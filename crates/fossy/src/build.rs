//! Ergonomic builders for the IR — this is the crate's "synthesisable
//! SystemC subset" frontend: design descriptions are Rust code built with
//! these helpers, playing the role OSSS/SystemC source plays for FOSSY.

use crate::ir::{
    BinOp, Dir, Entity, Expr, Function, MemoryDecl, Port, Process, SignalDecl, State, Stmt, Ty,
};

/// Shorthand constructors for expressions.
pub mod e {
    use super::*;

    /// A literal of the given width.
    pub fn c(v: i64, w: u32) -> Expr {
        Expr::Const(v, w)
    }

    /// A variable reference.
    pub fn v(name: &str, w: u32) -> Expr {
        Expr::Var(name.to_string(), w)
    }

    /// Addition.
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::Bin(BinOp::Add, Box::new(a), Box::new(b))
    }

    /// Subtraction.
    pub fn sub(a: Expr, b: Expr) -> Expr {
        Expr::Bin(BinOp::Sub, Box::new(a), Box::new(b))
    }

    /// Multiplication.
    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::Bin(BinOp::Mul, Box::new(a), Box::new(b))
    }

    /// Arithmetic shift right by a constant.
    pub fn shr(a: Expr, bits: i64) -> Expr {
        let w = 8;
        Expr::Bin(BinOp::Shr, Box::new(a), Box::new(c(bits, w)))
    }

    /// Shift left by a constant.
    pub fn shl(a: Expr, bits: i64) -> Expr {
        let w = 8;
        Expr::Bin(BinOp::Shl, Box::new(a), Box::new(c(bits, w)))
    }

    /// Less-than.
    pub fn lt(a: Expr, b: Expr) -> Expr {
        Expr::Bin(BinOp::Lt, Box::new(a), Box::new(b))
    }

    /// Equality.
    pub fn eq(a: Expr, b: Expr) -> Expr {
        Expr::Bin(BinOp::Eq, Box::new(a), Box::new(b))
    }

    /// Function call.
    pub fn call(name: &str, args: Vec<Expr>) -> Expr {
        Expr::Call(name.to_string(), args)
    }

    /// Memory read.
    pub fn mem(name: &str, idx: Expr, w: u32) -> Expr {
        Expr::MemRead(name.to_string(), Box::new(idx), w)
    }
}

/// Shorthand constructors for statements.
pub mod s {
    use super::*;

    /// Assignment.
    pub fn assign(target: &str, value: Expr) -> Stmt {
        Stmt::Assign {
            target: target.to_string(),
            value,
        }
    }

    /// Memory write.
    pub fn store(mem: &str, index: Expr, value: Expr) -> Stmt {
        Stmt::MemWrite {
            mem: mem.to_string(),
            index,
            value,
        }
    }

    /// Two-armed conditional.
    pub fn if_(cond: Expr, then_: Vec<Stmt>, else_: Vec<Stmt>) -> Stmt {
        Stmt::If { cond, then_, else_ }
    }

    /// State transition.
    pub fn goto(state: &str) -> Stmt {
        Stmt::Goto(state.to_string())
    }
}

/// Builds one [`Entity`] fluently.
#[derive(Debug, Default)]
pub struct EntityBuilder {
    entity: Entity,
}

impl EntityBuilder {
    /// Starts an entity.
    pub fn new(name: &str) -> Self {
        EntityBuilder {
            entity: Entity {
                name: name.to_string(),
                ..Default::default()
            },
        }
    }

    /// Adds an input port.
    pub fn input(mut self, name: &str, ty: Ty) -> Self {
        self.entity.ports.push(Port {
            name: name.to_string(),
            dir: Dir::In,
            ty,
        });
        self
    }

    /// Adds an output port.
    pub fn output(mut self, name: &str, ty: Ty) -> Self {
        self.entity.ports.push(Port {
            name: name.to_string(),
            dir: Dir::Out,
            ty,
        });
        self
    }

    /// Adds an internal signal.
    pub fn signal(mut self, name: &str, ty: Ty) -> Self {
        self.entity.signals.push(SignalDecl {
            name: name.to_string(),
            ty,
        });
        self
    }

    /// Adds a block-RAM memory.
    pub fn memory(mut self, name: &str, words: u32, width: u32) -> Self {
        self.entity.memories.push(MemoryDecl {
            name: name.to_string(),
            words,
            width,
        });
        self
    }

    /// Adds a synthesisable function.
    pub fn function(
        mut self,
        name: &str,
        params: &[(&str, Ty)],
        ret: Ty,
        body: Vec<Stmt>,
        locals: &[(&str, Ty)],
        result: Expr,
    ) -> Self {
        self.entity.functions.push(Function {
            name: name.to_string(),
            params: params.iter().map(|(n, t)| (n.to_string(), *t)).collect(),
            ret,
            locals: locals.iter().map(|(n, t)| (n.to_string(), *t)).collect(),
            body,
            result,
        });
        self
    }

    /// Adds a free-running clocked process (pipeline stage).
    pub fn clocked(mut self, name: &str, stmts: Vec<Stmt>) -> Self {
        self.entity.processes.push(Process::Clocked {
            name: name.to_string(),
            stmts,
        });
        self
    }

    /// Adds an FSM process; `states` pairs `(name, stmts)`, first state is
    /// the reset state.
    pub fn fsm(mut self, name: &str, states: Vec<(&str, Vec<Stmt>)>) -> Self {
        self.entity.processes.push(Process::Fsm {
            name: name.to_string(),
            states: states
                .into_iter()
                .map(|(n, stmts)| State {
                    name: n.to_string(),
                    stmts,
                })
                .collect(),
        });
        self
    }

    /// Validates and returns the entity.
    ///
    /// # Panics
    ///
    /// Panics with the validation message if the entity is inconsistent —
    /// builder misuse is a programming error in the design description.
    pub fn build(self) -> Entity {
        if let Err(msg) = self.entity.validate() {
            panic!("invalid entity `{}`: {msg}", self.entity.name);
        }
        self.entity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assembles_valid_entity() {
        let ent = EntityBuilder::new("acc")
            .input("clk", Ty::Bit)
            .input("din", Ty::Signed(16))
            .output("dout", Ty::Signed(16))
            .signal("sum", Ty::Signed(16))
            .clocked(
                "accumulate",
                vec![s::assign("sum", e::add(e::v("sum", 16), e::v("din", 16)))],
            )
            .build();
        assert_eq!(ent.name, "acc");
        assert_eq!(ent.ports.len(), 3);
        assert_eq!(ent.processes.len(), 1);
    }

    #[test]
    #[should_panic(expected = "invalid entity")]
    fn builder_rejects_bad_goto() {
        let _ = EntityBuilder::new("bad")
            .fsm("f", vec![("s0", vec![s::goto("missing")])])
            .build();
    }

    #[test]
    fn expression_helpers_compose() {
        use std::collections::BTreeMap;
        let funcs = BTreeMap::new();
        let expr = e::add(e::mul(e::v("a", 8), e::v("b", 8)), e::c(3, 16));
        assert_eq!(expr.width(&funcs), 16);
        let shifted = e::shr(e::v("x", 16), 2);
        assert_eq!(shifted.width(&funcs), 16);
    }

    #[test]
    fn fsm_builder_preserves_state_order() {
        let ent = EntityBuilder::new("fsm_ent")
            .signal("x", Ty::Unsigned(4))
            .fsm(
                "ctrl",
                vec![
                    ("idle", vec![s::goto("run")]),
                    ("run", vec![s::assign("x", e::c(1, 4)), s::goto("idle")]),
                ],
            )
            .build();
        match &ent.processes[0] {
            Process::Fsm { states, .. } => {
                assert_eq!(states[0].name, "idle");
                assert_eq!(states[1].name, "run");
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
