//! The case study's IDWT hardware designs, in both styles of Table 2:
//!
//! * **FOSSY input style** — the synthesisable-OSSS description: lifting
//!   arithmetic factored into functions, one explicit control FSM, a
//!   shared datapath reused across the lifting steps, line buffers in
//!   block RAM (`osss_array<short, 2N+5>` in the paper's listing).
//! * **Hand-written reference style** — what an RTL designer writes:
//!   the 5/3 with a compact shared-adder datapath, the 9/7 as a
//!   four-stage pipelined datapath with dedicated multipliers.
//!
//! The structural contrast drives the Table 2 outcome: FOSSY's inlining
//! duplicates the 5/3 adder logic at each call site (≈ +10 % area), while
//! for the 9/7 the FOSSY FSM time-multiplexes one lifting multiplier
//! (smaller than the pipelined reference) at the cost of a much deeper
//! combinational path (lower fmax).

use crate::build::{e, s, EntityBuilder};
use crate::ir::{Entity, Expr, Ty};

/// Line length N of the case-study tiles (the paper's `2N+5` line buffer).
pub const LINE_N: u32 = 512;
/// Line-buffer words: `2N + 5`.
pub const LINE_BUF_WORDS: u32 = 2 * LINE_N + 5;

const W: u32 = 18; // internal datapath width (16-bit samples + growth)
const AW: u32 = 11; // address width for the line buffers
const CW: u32 = 16; // 9/7 lifting coefficient width (Q2.12 fixed point)

/// 9/7 lifting constants in Q2.12 fixed point.
pub mod coef {
    /// α = −1.586134342 × 4096.
    pub const ALPHA: i64 = -6497;
    /// β = −0.052980118 × 4096.
    pub const BETA: i64 = -217;
    /// γ = 0.882911076 × 4096.
    pub const GAMMA: i64 = 3616;
    /// δ = 0.443506852 × 4096.
    pub const DELTA: i64 = 1817;
    /// K = 1.230174105 × 4096.
    pub const K: i64 = 5039;
    /// 1/K × 4096.
    pub const INV_K: i64 = 3330;
}

fn vw(n: &str) -> Expr {
    e::v(n, W)
}

fn addr(n: &str) -> Expr {
    e::v(n, AW)
}

/// The IDWT53 in FOSSY input style: `unpredict`/`unupdate` functions and
/// one explicit control FSM covering the row and column passes, with the
/// lifting functions called at four distinct sites (row/col × even/odd) —
/// each of which FOSSY's inlining turns into dedicated adders.
pub fn idwt53_fossy_input() -> Entity {
    EntityBuilder::new("idwt53")
        .input("start", Ty::Bit)
        .input("n_cols", Ty::Unsigned(AW))
        .input("n_rows", Ty::Unsigned(AW))
        .output("done", Ty::Bit)
        .signal("i", Ty::Unsigned(AW))
        .signal("j", Ty::Unsigned(AW))
        .signal("x0", Ty::Signed(W))
        .signal("x1", Ty::Signed(W))
        .signal("x2", Ty::Signed(W))
        .signal("s_even", Ty::Signed(W))
        .signal("s_odd", Ty::Signed(W))
        .memory("linebuf", LINE_BUF_WORDS, 16)
        .memory("colbuf", LINE_BUF_WORDS, 16)
        // Inverse update: s' = s − ((d0 + d1 + 2) >> 2).
        .function(
            "unupdate53",
            &[
                ("s", Ty::Signed(W)),
                ("d0", Ty::Signed(W)),
                ("d1", Ty::Signed(W)),
            ],
            Ty::Signed(W),
            vec![s::assign(
                "dsum",
                e::add(e::add(vw("d0"), vw("d1")), e::c(2, W)),
            )],
            &[("dsum", Ty::Signed(W))],
            e::sub(vw("s"), e::shr(vw("dsum"), 2)),
        )
        // Inverse predict: d' = d + ((a + c) >> 1).
        .function(
            "unpredict53",
            &[
                ("d", Ty::Signed(W)),
                ("a", Ty::Signed(W)),
                ("c", Ty::Signed(W)),
            ],
            Ty::Signed(W),
            vec![s::assign("asum", e::add(vw("a"), vw("c")))],
            &[("asum", Ty::Signed(W))],
            e::add(vw("d"), e::shr(vw("asum"), 1)),
        )
        .fsm(
            "ctrl",
            vec![
                (
                    "idle",
                    vec![
                        s::assign("done", e::c(0, 1)),
                        s::assign("i", e::c(0, AW)),
                        s::assign("j", e::c(0, AW)),
                        s::if_(
                            e::eq(e::v("start", 1), e::c(1, 1)),
                            vec![s::goto("row_load")],
                            vec![s::goto("idle")],
                        ),
                    ],
                ),
                (
                    "row_load",
                    vec![
                        s::assign("x0", e::mem("linebuf", addr("i"), W)),
                        s::assign("x1", e::mem("linebuf", e::add(addr("i"), e::c(1, AW)), W)),
                        s::assign("x2", e::mem("linebuf", e::add(addr("i"), e::c(2, AW)), W)),
                        s::goto("row_even"),
                    ],
                ),
                (
                    "row_even",
                    vec![
                        // Even (low) sample reconstruction via the update fn.
                        s::assign(
                            "s_even",
                            e::call("unupdate53", vec![vw("x1"), vw("x0"), vw("x2")]),
                        ),
                        s::goto("row_odd"),
                    ],
                ),
                (
                    "row_odd",
                    vec![
                        s::assign(
                            "s_odd",
                            e::call("unpredict53", vec![vw("x2"), vw("s_even"), vw("x0")]),
                        ),
                        s::goto("row_store"),
                    ],
                ),
                (
                    "row_store",
                    vec![
                        s::store("colbuf", e::shl(addr("i"), 1), vw("s_even")),
                        s::store(
                            "colbuf",
                            e::add(e::shl(addr("i"), 1), e::c(1, AW)),
                            vw("s_odd"),
                        ),
                        s::assign("i", e::add(addr("i"), e::c(1, AW))),
                        s::if_(
                            e::lt(addr("i"), e::v("n_cols", AW)),
                            vec![s::goto("row_load")],
                            vec![s::assign("i", e::c(0, AW)), s::goto("col_load")],
                        ),
                    ],
                ),
                (
                    "col_load",
                    vec![
                        s::assign("x0", e::mem("colbuf", addr("j"), W)),
                        s::assign("x1", e::mem("colbuf", e::add(addr("j"), e::c(1, AW)), W)),
                        s::assign("x2", e::mem("colbuf", e::add(addr("j"), e::c(2, AW)), W)),
                        s::goto("col_even"),
                    ],
                ),
                (
                    "col_even",
                    vec![
                        s::assign(
                            "s_even",
                            e::call("unupdate53", vec![vw("x1"), vw("x0"), vw("x2")]),
                        ),
                        s::goto("col_odd"),
                    ],
                ),
                (
                    "col_odd",
                    vec![
                        s::assign(
                            "s_odd",
                            e::call("unpredict53", vec![vw("x2"), vw("s_even"), vw("x0")]),
                        ),
                        s::goto("col_store"),
                    ],
                ),
                (
                    "col_store",
                    vec![
                        s::store("linebuf", e::shl(addr("j"), 1), vw("s_even")),
                        s::store(
                            "linebuf",
                            e::add(e::shl(addr("j"), 1), e::c(1, AW)),
                            vw("s_odd"),
                        ),
                        s::assign("j", e::add(addr("j"), e::c(1, AW))),
                        s::if_(
                            e::lt(addr("j"), e::v("n_rows", AW)),
                            vec![s::goto("col_load")],
                            vec![s::goto("flush")],
                        ),
                    ],
                ),
                (
                    "flush",
                    vec![s::assign("done", e::c(1, 1)), s::goto("idle")],
                ),
            ],
        )
        .build()
}

/// A **bit-true** 1-D inverse 5/3 datapath core: reads a Mallat-ordered
/// coefficient line (`n_low` low coefficients, then `n_high` high
/// coefficients) from `linebuf`, writes the reconstructed interleaved
/// samples to `colbuf`.
///
/// Unlike the Table 2 entities (which model the paper's design *shapes*),
/// this core implements the exact lifting recurrence of ITU-T T.800 with
/// whole-sample symmetric extension, and the test suite verifies it
/// sample-for-sample against the `jpeg2000` crate's software lifting — the
/// RTL-versus-reference equivalence check a real FOSSY flow would run.
pub fn idwt53_1d_core() -> Entity {
    let ns = || e::v("n_low", AW);
    let nd = || e::v("n_high", AW);
    let i = || addr("i");
    EntityBuilder::new("idwt53_1d_core")
        .input("start", Ty::Bit)
        .input("n_low", Ty::Unsigned(AW))
        .input("n_high", Ty::Unsigned(AW))
        .output("done", Ty::Bit)
        .signal("i", Ty::Unsigned(AW))
        .signal("sv", Ty::Signed(W))
        .signal("dv", Ty::Signed(W))
        .signal("dl", Ty::Signed(W))
        .signal("dr", Ty::Signed(W))
        .signal("el", Ty::Signed(W))
        .signal("er", Ty::Signed(W))
        .memory("linebuf", LINE_BUF_WORDS, 16)
        .memory("colbuf", LINE_BUF_WORDS, 16)
        .function(
            "unupdate53",
            &[
                ("s", Ty::Signed(W)),
                ("d0", Ty::Signed(W)),
                ("d1", Ty::Signed(W)),
            ],
            Ty::Signed(W),
            vec![s::assign(
                "dsum",
                e::add(e::add(vw("d0"), vw("d1")), e::c(2, W)),
            )],
            &[("dsum", Ty::Signed(W))],
            e::sub(vw("s"), e::shr(vw("dsum"), 2)),
        )
        .function(
            "unpredict53",
            &[
                ("d", Ty::Signed(W)),
                ("a", Ty::Signed(W)),
                ("c", Ty::Signed(W)),
            ],
            Ty::Signed(W),
            vec![s::assign("asum", e::add(vw("a"), vw("c")))],
            &[("asum", Ty::Signed(W))],
            e::add(vw("d"), e::shr(vw("asum"), 1)),
        )
        .fsm(
            "ctrl",
            vec![
                (
                    "idle",
                    vec![
                        s::assign("done", e::c(0, 1)),
                        s::assign("i", e::c(0, AW)),
                        s::if_(
                            e::eq(e::v("start", 1), e::c(1, 1)),
                            vec![s::goto("ev_read")],
                            vec![s::goto("idle")],
                        ),
                    ],
                ),
                // Even (low) reconstruction: even[i] = s[i] − ((dl+dr+2)>>2)
                // with whole-sample symmetric extension at both borders.
                (
                    "ev_read",
                    vec![
                        s::assign("sv", e::mem("linebuf", i(), W)),
                        s::if_(
                            e::eq(i(), e::c(0, AW)),
                            vec![s::assign("dl", e::mem("linebuf", ns(), W))],
                            vec![s::assign(
                                "dl",
                                e::mem("linebuf", e::sub(e::add(ns(), i()), e::c(1, AW)), W),
                            )],
                        ),
                        s::if_(
                            e::lt(i(), nd()),
                            vec![s::assign("dr", e::mem("linebuf", e::add(ns(), i()), W))],
                            vec![s::assign(
                                "dr",
                                e::mem("linebuf", e::sub(e::add(ns(), nd()), e::c(1, AW)), W),
                            )],
                        ),
                        s::goto("ev_write"),
                    ],
                ),
                (
                    "ev_write",
                    vec![
                        s::store(
                            "colbuf",
                            e::shl(i(), 1),
                            e::call("unupdate53", vec![vw("sv"), vw("dl"), vw("dr")]),
                        ),
                        s::assign("i", e::add(i(), e::c(1, AW))),
                        s::if_(
                            e::lt(e::add(i(), e::c(1, AW)), ns()),
                            vec![s::goto("ev_read")],
                            vec![s::assign("i", e::c(0, AW)), s::goto("od_read")],
                        ),
                    ],
                ),
                // Odd (high) reconstruction: odd[i] = d[i] + ((el+er)>>1).
                (
                    "od_read",
                    vec![
                        s::assign("dv", e::mem("linebuf", e::add(ns(), i()), W)),
                        s::assign("el", e::mem("colbuf", e::shl(i(), 1), W)),
                        s::if_(
                            e::lt(e::add(i(), e::c(1, AW)), ns()),
                            vec![s::assign(
                                "er",
                                e::mem("colbuf", e::shl(e::add(i(), e::c(1, AW)), 1), W),
                            )],
                            vec![s::assign(
                                "er",
                                e::mem("colbuf", e::shl(e::sub(ns(), e::c(1, AW)), 1), W),
                            )],
                        ),
                        s::goto("od_write"),
                    ],
                ),
                (
                    "od_write",
                    vec![
                        s::store(
                            "colbuf",
                            e::add(e::shl(i(), 1), e::c(1, AW)),
                            e::call("unpredict53", vec![vw("dv"), vw("el"), vw("er")]),
                        ),
                        s::assign("i", e::add(i(), e::c(1, AW))),
                        s::if_(
                            e::lt(e::add(i(), e::c(1, AW)), nd()),
                            vec![s::goto("od_read")],
                            vec![s::goto("finish")],
                        ),
                    ],
                ),
                (
                    "finish",
                    vec![s::assign("done", e::c(1, 1)), s::goto("idle")],
                ),
            ],
        )
        .build()
}

/// The IDWT53 hand-written reference: a compact control FSM plus a
/// *shared* lifting datapath process — one adder network with an
/// operation-select mux serves both the update and predict steps, which
/// is the hand optimisation FOSSY's per-call-site inlining forgoes.
pub fn idwt53_reference() -> Entity {
    EntityBuilder::new("idwt53_ref")
        .input("start", Ty::Bit)
        .input("n_cols", Ty::Unsigned(AW))
        .input("n_rows", Ty::Unsigned(AW))
        .output("done", Ty::Bit)
        .signal("i", Ty::Unsigned(AW))
        .signal("op_sel", Ty::Bit)
        .signal("pass_col", Ty::Bit)
        .signal("a", Ty::Signed(W))
        .signal("b", Ty::Signed(W))
        .signal("c", Ty::Signed(W))
        .signal("a_eff", Ty::Signed(W))
        .signal("c_eff", Ty::Signed(W))
        .signal("res", Ty::Signed(W))
        .signal("res_sat", Ty::Signed(W))
        .signal("addr_even", Ty::Unsigned(AW))
        .signal("addr_odd", Ty::Unsigned(AW))
        .signal("at_left", Ty::Bit)
        .signal("at_right", Ty::Bit)
        .memory("linebuf", LINE_BUF_WORDS, 16)
        .memory("colbuf", LINE_BUF_WORDS, 16)
        // Registered address generation and boundary flags — bread and
        // butter of a hand RTL implementation.
        .clocked(
            "addrgen",
            vec![
                s::assign("addr_even", e::shl(addr("i"), 1)),
                s::assign("addr_odd", e::add(e::shl(addr("i"), 1), e::c(1, AW))),
                s::assign("at_left", e::eq(addr("i"), e::c(0, AW))),
                s::assign("at_right", e::eq(addr("i"), e::v("n_cols", AW))),
            ],
        )
        // Whole-sample symmetric extension at the tile borders: mirror
        // the inner neighbour instead of reading outside the line.
        .clocked(
            "boundary",
            vec![
                s::if_(
                    e::eq(e::v("at_left", 1), e::c(1, 1)),
                    vec![s::assign("a_eff", vw("c"))],
                    vec![s::assign("a_eff", vw("a"))],
                ),
                s::if_(
                    e::eq(e::v("at_right", 1), e::c(1, 1)),
                    vec![s::assign("c_eff", vw("a"))],
                    vec![s::assign("c_eff", vw("c"))],
                ),
            ],
        )
        // The single shared datapath: t = a + c computed once; the mux
        // selects update (b − (t+2)>>2) or predict (b + t>>1).
        .clocked(
            "datapath",
            vec![s::if_(
                e::eq(e::v("op_sel", 1), e::c(0, 1)),
                vec![s::assign(
                    "res",
                    e::sub(
                        vw("b"),
                        e::shr(e::add(e::add(vw("a_eff"), vw("c_eff")), e::c(2, W)), 2),
                    ),
                )],
                vec![s::assign(
                    "res",
                    e::add(vw("b"), e::shr(e::add(vw("a_eff"), vw("c_eff")), 1)),
                )],
            )],
        )
        // Output saturation to the 16-bit sample range.
        .clocked(
            "saturate",
            vec![s::if_(
                e::lt(vw("res"), e::c(-32_768, W)),
                vec![s::assign("res_sat", e::c(-32_768, W))],
                vec![s::if_(
                    e::lt(e::c(32_767, W), vw("res")),
                    vec![s::assign("res_sat", e::c(32_767, W))],
                    vec![s::assign("res_sat", vw("res"))],
                )],
            )],
        )
        .fsm(
            "ctrl",
            vec![
                (
                    "idle",
                    vec![
                        s::assign("done", e::c(0, 1)),
                        s::assign("i", e::c(0, AW)),
                        s::assign("pass_col", e::c(0, 1)),
                        s::if_(
                            e::eq(e::v("start", 1), e::c(1, 1)),
                            vec![s::goto("load")],
                            vec![s::goto("idle")],
                        ),
                    ],
                ),
                (
                    "load",
                    vec![
                        s::assign("a", e::mem("linebuf", addr("i"), W)),
                        s::assign("b", e::mem("linebuf", e::add(addr("i"), e::c(1, AW)), W)),
                        s::assign("c", e::mem("linebuf", e::add(addr("i"), e::c(2, AW)), W)),
                        s::assign("op_sel", e::c(0, 1)),
                        s::goto("even"),
                    ],
                ),
                (
                    "even",
                    vec![
                        s::store("colbuf", e::v("addr_even", AW), vw("res_sat")),
                        s::assign("op_sel", e::c(1, 1)),
                        s::assign("b", vw("res")),
                        s::goto("odd"),
                    ],
                ),
                (
                    "odd",
                    vec![
                        s::store("colbuf", e::v("addr_odd", AW), vw("res_sat")),
                        s::assign("i", e::add(addr("i"), e::c(1, AW))),
                        s::if_(
                            e::lt(addr("i"), e::v("n_cols", AW)),
                            vec![s::goto("load")],
                            vec![s::if_(
                                e::eq(e::v("pass_col", 1), e::c(0, 1)),
                                vec![
                                    s::assign("pass_col", e::c(1, 1)),
                                    s::assign("i", e::c(0, AW)),
                                    s::goto("load"),
                                ],
                                vec![s::goto("finish")],
                            )],
                        ),
                    ],
                ),
                (
                    "finish",
                    vec![s::assign("done", e::c(1, 1)), s::goto("idle")],
                ),
            ],
        )
        .build()
}

/// One Q2.12 lifting step expression: `b + ((coef × (a + c)) >> 12)`.
fn lift97(a: Expr, b: Expr, coef: Expr) -> Expr {
    e::add(b, e::shr(e::mul(coef, a), 12))
}

/// The IDWT97 in FOSSY input style: one `lift` function whose coefficient
/// is a *register* loaded by the control FSM, so a single multiplier site
/// per pass direction is reused for all four lifting steps (α, β, γ, δ)
/// plus the K/1/K scaling — sequential, small, but with the deep
/// FSM-muxed path that costs ≈ 28 % of the clock rate in Table 2.
#[allow(clippy::vec_init_then_push)] // states read top-to-bottom like an FSM listing
pub fn idwt97_fossy_input() -> Entity {
    let mut b = EntityBuilder::new("idwt97")
        .input("start", Ty::Bit)
        .input("n_cols", Ty::Unsigned(AW))
        .input("n_rows", Ty::Unsigned(AW))
        .output("done", Ty::Bit)
        .signal("i", Ty::Unsigned(AW))
        .signal("step", Ty::Unsigned(3))
        .signal("coef_reg", Ty::Signed(CW))
        .signal("x0", Ty::Signed(W))
        .signal("x1", Ty::Signed(W))
        .signal("x2", Ty::Signed(W))
        .signal("acc", Ty::Signed(W))
        .memory("linebuf", LINE_BUF_WORDS, 16)
        .memory("colbuf", LINE_BUF_WORDS, 16)
        .function(
            "lift",
            &[
                ("a", Ty::Signed(W)),
                ("b", Ty::Signed(W)),
                ("c", Ty::Signed(W)),
                ("k", Ty::Signed(CW)),
            ],
            Ty::Signed(W),
            vec![s::assign("nsum", e::add(vw("a"), vw("c")))],
            &[("nsum", Ty::Signed(W))],
            e::add(vw("b"), e::shr(e::mul(e::v("k", CW), vw("nsum")), 12)),
        )
        .function(
            "scale",
            &[("v", Ty::Signed(W)), ("k", Ty::Signed(CW))],
            Ty::Signed(W),
            vec![],
            &[],
            e::shr(e::mul(e::v("k", CW), vw("v")), 12),
        );

    // Control FSM: per step, load the coefficient, sweep the line through
    // the single shared lifting site, advance to the next step.
    let coef_of = |st: i64| -> i64 {
        match st {
            0 => coef::DELTA, // inverse order: undo δ first
            1 => coef::GAMMA,
            2 => coef::BETA,
            _ => coef::ALPHA,
        }
    };
    let mut states: Vec<(&str, Vec<crate::ir::Stmt>)> = Vec::new();
    states.push((
        "idle",
        vec![
            s::assign("done", e::c(0, 1)),
            s::assign("i", e::c(0, AW)),
            s::assign("step", e::c(0, 3)),
            s::if_(
                e::eq(e::v("start", 1), e::c(1, 1)),
                vec![s::goto("unscale")],
                vec![s::goto("idle")],
            ),
        ],
    ));
    states.push((
        "unscale",
        vec![
            // Undo the K / 1/K normalisation through the shared scaler.
            s::assign("x0", e::mem("linebuf", e::shl(addr("i"), 1), W)),
            s::assign(
                "x1",
                e::mem("linebuf", e::add(e::shl(addr("i"), 1), e::c(1, AW)), W),
            ),
            s::assign(
                "acc",
                e::call("scale", vec![vw("x0"), e::c(coef::K, CW as i64 as u32)]),
            ),
            s::store("linebuf", e::shl(addr("i"), 1), vw("acc")),
            s::assign(
                "acc",
                e::call("scale", vec![vw("x1"), e::c(coef::INV_K, CW)]),
            ),
            s::store(
                "linebuf",
                e::add(e::shl(addr("i"), 1), e::c(1, AW)),
                vw("acc"),
            ),
            s::assign("i", e::add(addr("i"), e::c(1, AW))),
            s::if_(
                e::lt(addr("i"), e::v("n_cols", AW)),
                vec![s::goto("unscale")],
                vec![s::assign("i", e::c(0, AW)), s::goto("load_coef")],
            ),
        ],
    ));
    states.push((
        "load_coef",
        vec![
            s::if_(
                e::eq(e::v("step", 3), e::c(0, 3)),
                vec![s::assign("coef_reg", e::c(coef_of(0), CW))],
                vec![s::if_(
                    e::eq(e::v("step", 3), e::c(1, 3)),
                    vec![s::assign("coef_reg", e::c(coef_of(1), CW))],
                    vec![s::if_(
                        e::eq(e::v("step", 3), e::c(2, 3)),
                        vec![s::assign("coef_reg", e::c(coef_of(2), CW))],
                        vec![s::assign("coef_reg", e::c(coef_of(3), CW))],
                    )],
                )],
            ),
            s::goto("sweep_lift"),
        ],
    ));
    states.push((
        "sweep_lift",
        vec![
            // FOSSY chains the memory loads straight into THE shared
            // multiplier site reused by all four lifting steps — one
            // long combinational path through the FSM muxing, which is
            // where the generated design loses clock rate.
            s::assign(
                "acc",
                e::call(
                    "lift",
                    vec![
                        e::mem("linebuf", addr("i"), W),
                        e::mem("linebuf", e::add(addr("i"), e::c(1, AW)), W),
                        e::mem("linebuf", e::add(addr("i"), e::c(2, AW)), W),
                        e::v("coef_reg", CW),
                    ],
                ),
            ),
            s::store("linebuf", e::add(addr("i"), e::c(1, AW)), vw("acc")),
            s::assign("i", e::add(addr("i"), e::c(1, AW))),
            s::if_(
                e::lt(addr("i"), e::v("n_cols", AW)),
                vec![s::goto("sweep_lift")],
                vec![
                    s::assign("i", e::c(0, AW)),
                    s::assign("step", e::add(e::v("step", 3), e::c(1, 3))),
                    s::if_(
                        e::lt(e::v("step", 3), e::c(4, 3)),
                        vec![s::goto("load_coef")],
                        vec![s::goto("col_copy")],
                    ),
                ],
            ),
        ],
    ));
    states.push((
        "col_copy",
        vec![
            // Transpose into the column buffer for the vertical pass.
            s::assign("x0", e::mem("linebuf", addr("i"), W)),
            s::store("colbuf", addr("i"), vw("x0")),
            s::assign("i", e::add(addr("i"), e::c(1, AW))),
            s::if_(
                e::lt(addr("i"), e::v("n_rows", AW)),
                vec![s::goto("col_copy")],
                vec![s::goto("finish")],
            ),
        ],
    ));
    states.push((
        "finish",
        vec![s::assign("done", e::c(1, 1)), s::goto("idle")],
    ));
    b = b.fsm("ctrl", states);
    b.build()
}

/// The IDWT97 hand-written reference: a four-stage pipelined datapath
/// with **dedicated multipliers per lifting step** plus a scaling stage —
/// bigger than the FOSSY version but with short per-stage paths (higher
/// fmax), matching the Table 2 relation.
pub fn idwt97_reference() -> Entity {
    let stage = |n: u32, coefficient: i64| -> Vec<crate::ir::Stmt> {
        let a = format!("st{n}_a");
        let b_ = format!("st{n}_b");
        let c_ = format!("st{n}_c");
        let out = format!("st{n}_out");
        vec![
            s::assign(
                &out,
                lift97(
                    e::add(e::v(&a, W), e::v(&c_, W)),
                    e::v(&b_, W),
                    e::c(coefficient, CW),
                ),
            ),
            // Shift registers feeding the next stage.
            s::assign(&a, e::v(&b_, W)),
            s::assign(&c_, e::v(&out, W)),
        ]
    };
    let mut b = EntityBuilder::new("idwt97_ref")
        .input("start", Ty::Bit)
        .input("din", Ty::Signed(W))
        .output("dout", Ty::Signed(W))
        .output("done", Ty::Bit)
        .signal("i", Ty::Unsigned(AW))
        .signal("phase", Ty::Bit)
        .memory("linebuf", LINE_BUF_WORDS, 16)
        .memory("colbuf", LINE_BUF_WORDS, 16);
    for n in 0..4u32 {
        b = b
            .signal(&format!("st{n}_a"), Ty::Signed(W))
            .signal(&format!("st{n}_b"), Ty::Signed(W))
            .signal(&format!("st{n}_c"), Ty::Signed(W))
            .signal(&format!("st{n}_out"), Ty::Signed(W));
    }
    b = b
        .signal("sc_even", Ty::Signed(W))
        .signal("sc_odd", Ty::Signed(W))
        // Stage 0..3: δ, γ, β, α inverse lifting, each with its own
        // multiplier.
        .clocked("stage_delta", stage(0, coef::DELTA))
        .clocked("stage_gamma", stage(1, coef::GAMMA))
        .clocked("stage_beta", stage(2, coef::BETA))
        .clocked("stage_alpha", stage(3, coef::ALPHA))
        // Dedicated scaling stage (two more multipliers).
        .clocked(
            "stage_scale",
            vec![
                s::assign(
                    "sc_even",
                    e::shr(e::mul(e::c(coef::K, CW), e::v("st3_out", W)), 12),
                ),
                s::assign(
                    "sc_odd",
                    e::shr(e::mul(e::c(coef::INV_K, CW), e::v("st3_out", W)), 12),
                ),
                s::assign("dout", e::v("sc_even", W)),
            ],
        )
        // Small feed/control FSM.
        .fsm(
            "ctrl",
            vec![
                (
                    "idle",
                    vec![
                        s::assign("done", e::c(0, 1)),
                        s::assign("i", e::c(0, AW)),
                        s::if_(
                            e::eq(e::v("start", 1), e::c(1, 1)),
                            vec![s::goto("feed")],
                            vec![s::goto("idle")],
                        ),
                    ],
                ),
                (
                    "feed",
                    vec![
                        s::assign("st0_b", e::mem("linebuf", addr("i"), W)),
                        s::store("colbuf", addr("i"), e::v("sc_odd", W)),
                        s::assign("i", e::add(addr("i"), e::c(1, AW))),
                        s::if_(
                            e::lt(addr("i"), e::c(LINE_N as i64, AW)),
                            vec![s::goto("feed")],
                            vec![s::if_(
                                e::eq(e::v("phase", 1), e::c(0, 1)),
                                vec![
                                    s::assign("phase", e::c(1, 1)),
                                    s::assign("i", e::c(0, AW)),
                                    s::goto("feed"),
                                ],
                                vec![s::goto("finish")],
                            )],
                        ),
                    ],
                ),
                (
                    "finish",
                    vec![s::assign("done", e::c(1, 1)), s::goto("idle")],
                ),
            ],
        );
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emit::{loc, systemc, vhdl};
    use crate::estimate::{estimate_entity, Virtex4};
    use crate::passes::inline_entity;

    #[test]
    fn idwt53_1d_core_is_bit_true_against_software_lifting() {
        use crate::interp::Interp;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        // For many lengths (even and odd) and random contents: run the RTL
        // core on the Mallat-ordered coefficients and compare the
        // reconstruction to jpeg2000's software inverse lifting.
        let ent = idwt53_1d_core();
        let mut rng = StdRng::seed_from_u64(53);
        for n in 2usize..=24 {
            // Random signal, forward transform in software to get valid
            // coefficients, then deinterleave into Mallat order.
            let orig: Vec<i32> = (0..n).map(|_| rng.gen_range(-1000..1000)).collect();
            let mut interleaved = orig.clone();
            jpeg2000::dwt::fdwt53_1d(&mut interleaved);
            let ns = n.div_ceil(2);
            let nd = n / 2;
            let mut it = Interp::new(&ent);
            {
                let mem = it.mem_mut("linebuf");
                for (k, i) in (0..n).step_by(2).enumerate() {
                    mem[k] = interleaved[i] as i64; // lows
                }
                for (k, i) in (1..n).step_by(2).enumerate() {
                    mem[ns + k] = interleaved[i] as i64; // highs
                }
            }
            it.set_input("n_low", ns as i64);
            it.set_input("n_high", nd as i64);
            it.set_input("start", 1);
            assert!(
                it.run_until(40 * n as u64 + 100, |s| s.get("done") == 1),
                "n={n}: core stuck in state {}",
                it.fsm_state("ctrl")
            );
            let got: Vec<i32> = (0..n)
                .map(|i| {
                    let v = it.mem_mut("colbuf")[i];
                    v as i32
                })
                .collect();
            assert_eq!(got, orig, "n={n}: RTL reconstruction differs");
        }
    }

    #[test]
    fn idwt53_1d_core_survives_the_fossy_pipeline() {
        use crate::interp::Interp;
        use crate::passes::{eliminate_dead_signals, fold_entity};
        let ent = idwt53_1d_core();
        let synthesised = eliminate_dead_signals(&fold_entity(&inline_entity(&ent)));
        assert!(synthesised.functions.is_empty());
        // Same stimulus through input and synthesised forms.
        let coeffs: [i64; 8] = [50, 52, 47, 49, 3, -2, 1, 0];
        let run = |ent: &crate::ir::Entity| -> Vec<i64> {
            let mut it = Interp::new(ent);
            for (i, v) in coeffs.iter().enumerate() {
                it.mem_mut("linebuf")[i] = *v;
            }
            it.set_input("n_low", 4);
            it.set_input("n_high", 4);
            it.set_input("start", 1);
            assert!(it.run_until(500, |s| s.get("done") == 1));
            (0..8).map(|i| it.mem_mut("colbuf")[i]).collect()
        };
        assert_eq!(run(&ent), run(&synthesised));
        // And the generated VHDL is sound.
        let code = crate::emit::vhdl::emit_entity_styled(
            &synthesised,
            crate::emit::vhdl::Style::ThreeAddress,
        );
        crate::emit::vhdl::structural_check(&code).expect("sound VHDL");
    }

    #[test]
    fn all_four_designs_validate() {
        for ent in [
            idwt53_fossy_input(),
            idwt53_reference(),
            idwt97_fossy_input(),
            idwt97_reference(),
        ] {
            ent.validate().expect("valid");
        }
    }

    #[test]
    fn inlined_designs_emit_sound_vhdl() {
        for ent in [idwt53_fossy_input(), idwt97_fossy_input()] {
            let inlined = inline_entity(&ent);
            let code = vhdl::emit_entity(&inlined);
            vhdl::structural_check(&code).expect("sound VHDL");
            assert!(!code.contains("function "), "everything inlined");
        }
    }

    #[test]
    fn generated_vhdl_is_larger_than_systemc_input() {
        for (ent, reference) in [
            (idwt53_fossy_input(), idwt53_reference()),
            (idwt97_fossy_input(), idwt97_reference()),
        ] {
            let input_loc = loc(&systemc::emit_entity(&ent));
            // FOSSY output: inlined, three-address, two-process FSMs.
            let gen = vhdl::emit_entity_styled(&inline_entity(&ent), vhdl::Style::ThreeAddress);
            vhdl::structural_check(&gen).expect("generated VHDL sound");
            let gen_loc = loc(&gen);
            // Hand reference: compact single-process style.
            let ref_loc = loc(&vhdl::emit_entity(&reference));
            assert!(
                gen_loc as f64 > 1.5 * input_loc as f64,
                "{}: generated {gen_loc} vs input {input_loc}",
                ent.name
            );
            assert!(
                gen_loc > ref_loc,
                "{}: generated {gen_loc} should exceed reference {ref_loc}",
                ent.name
            );
        }
    }

    #[test]
    fn table2_shape_idwt53() {
        let dev = Virtex4::lx25();
        let fossy = estimate_entity(&inline_entity(&idwt53_fossy_input()), &dev);
        let reference = estimate_entity(&idwt53_reference(), &dev);
        let area_ratio = fossy.slices as f64 / reference.slices as f64;
        assert!(
            area_ratio > 1.0 && area_ratio < 1.5,
            "FOSSY 5/3 should be moderately larger: ratio {area_ratio:.2}"
        );
        let fmax_ratio = fossy.fmax_mhz / reference.fmax_mhz;
        assert!(
            fmax_ratio > 0.7 && fmax_ratio < 1.3,
            "5/3 speeds comparable: ratio {fmax_ratio:.2}"
        );
        // Both meet the 100 MHz platform clock.
        assert!(fossy.fmax_mhz > 100.0, "fossy53 fmax {:.1}", fossy.fmax_mhz);
        assert!(reference.fmax_mhz > 100.0);
    }

    #[test]
    fn table2_shape_idwt97() {
        let dev = Virtex4::lx25();
        let fossy = estimate_entity(&inline_entity(&idwt97_fossy_input()), &dev);
        let reference = estimate_entity(&idwt97_reference(), &dev);
        assert!(
            fossy.slices < reference.slices,
            "FOSSY 9/7 is smaller (shared multiplier): {} vs {}",
            fossy.slices,
            reference.slices
        );
        assert!(
            fossy.fmax_mhz < reference.fmax_mhz,
            "FOSSY 9/7 is slower (deep FSM path): {:.1} vs {:.1}",
            fossy.fmax_mhz,
            reference.fmax_mhz
        );
    }

    #[test]
    fn line_buffers_use_brams() {
        let dev = Virtex4::lx25();
        let r = estimate_entity(&inline_entity(&idwt53_fossy_input()), &dev);
        assert!(r.brams >= 2, "two 2N+5 line buffers");
        assert!(r.utilisation < 1.0, "fits the LX25");
    }
}
