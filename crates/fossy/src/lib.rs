//! # fossy — a FOSSY-style high-level synthesis flow
//!
//! Re-implementation of the role the FOSSY tool (Functional Oldenburg
//! System SYnthesiser) plays in the OSSS flow: transform the synthesisable
//! subset description of the hardware subsystem into
//!
//! * **VHDL** for the hardware blocks — with FOSSY's signature
//!   transformation: *all functions and procedures inlined into a single
//!   explicit state machine, identifiers preserved* ([`passes`],
//!   [`emit::vhdl`]);
//! * **C** for the software tasks, linked against an OSSS embedded
//!   runtime ([`emit::c`]);
//! * **MHS/MSS platform files** for the EDK-style project of the target
//!   board ([`emit::platform`]).
//!
//! Because Xilinx ISE/XST cannot be run here, [`estimate`] provides a
//! consistent Virtex-4 technology mapper (4-input LUTs, slice flip-flops,
//! occupied slices, equivalent gates, fmax from the critical path) used
//! to regenerate Table 2 of the paper. [`idwt`] contains the case study's
//! IDWT53/IDWT97 designs in both styles — the FOSSY input (functions +
//! one control FSM) and the hand-written reference (pipelined processes).
//!
//! ## Example
//!
//! ```
//! use fossy::idwt;
//! use fossy::passes::inline_entity;
//! use fossy::emit::vhdl;
//! use fossy::estimate::{estimate_entity, Virtex4};
//!
//! let input = idwt::idwt53_fossy_input();
//! let synthesised = inline_entity(&input);       // the FOSSY transformation
//! let code = vhdl::emit_entity(&synthesised);
//! assert!(code.contains("entity idwt53"));
//! let report = estimate_entity(&synthesised, &Virtex4::lx25());
//! assert!(report.luts > 0 && report.fmax_mhz > 50.0);
//! ```

pub mod build;
pub mod emit;
pub mod estimate;
pub mod idwt;
pub mod interp;
pub mod ir;
pub mod passes;
