//! Synthesis passes: function inlining (FOSSY's signature transformation),
//! constant folding and dead-signal elimination.

use std::collections::BTreeMap;

use crate::ir::{BinOp, Entity, Expr, Function, Process, State, Stmt};

/// Inlines every function call site of the entity, producing the
/// "all functions and procedures inlined into a single explicit state
/// machine" form the paper describes for FOSSY-generated VHDL.
///
/// Function bodies must be straight-line (`Assign` statements plus the
/// result expression); parameters and locals are substituted by value, so
/// a parameter used twice duplicates its argument logic — exactly the
/// area growth the Table 2 comparison shows for the 5/3 filter.
///
/// # Panics
///
/// Panics if a function body contains unsupported statements; the shipped
/// frontend designs are all inlinable by construction.
pub fn inline_entity(entity: &Entity) -> Entity {
    let funcs = entity.function_map();
    let mut out = entity.clone();
    out.functions.clear();
    for p in &mut out.processes {
        match p {
            Process::Clocked { stmts, .. } => {
                *stmts = stmts.iter().map(|s| inline_stmt(s, &funcs)).collect();
            }
            Process::Fsm { states, .. } => {
                for State { stmts, .. } in states {
                    *stmts = stmts.iter().map(|s| inline_stmt(s, &funcs)).collect();
                }
            }
        }
    }
    out
}

fn inline_stmt(s: &Stmt, funcs: &BTreeMap<String, Function>) -> Stmt {
    match s {
        Stmt::Assign { target, value } => Stmt::Assign {
            target: target.clone(),
            value: inline_expr(value, funcs),
        },
        Stmt::MemWrite { mem, index, value } => Stmt::MemWrite {
            mem: mem.clone(),
            index: inline_expr(index, funcs),
            value: inline_expr(value, funcs),
        },
        Stmt::If { cond, then_, else_ } => Stmt::If {
            cond: inline_expr(cond, funcs),
            then_: then_.iter().map(|s| inline_stmt(s, funcs)).collect(),
            else_: else_.iter().map(|s| inline_stmt(s, funcs)).collect(),
        },
        Stmt::Goto(t) => Stmt::Goto(t.clone()),
    }
}

fn inline_expr(e: &Expr, funcs: &BTreeMap<String, Function>) -> Expr {
    match e {
        Expr::Call(name, args) => {
            let f = funcs
                .get(name)
                .unwrap_or_else(|| panic!("inline: unknown function `{name}`"));
            let args: Vec<Expr> = args.iter().map(|a| inline_expr(a, funcs)).collect();
            let mut env: BTreeMap<String, Expr> = f
                .params
                .iter()
                .zip(&args)
                .map(|((p, _), a)| (p.clone(), a.clone()))
                .collect();
            // Straight-line local assignments become substitutions.
            for stmt in &f.body {
                match stmt {
                    Stmt::Assign { target, value } => {
                        let v = subst(value, &env);
                        env.insert(target.clone(), v);
                    }
                    other => panic!(
                        "inline: function `{name}` body contains non-assign statement {other:?}"
                    ),
                }
            }
            // Recurse in case the function itself calls functions.
            inline_expr(&subst(&f.result, &env), funcs)
        }
        Expr::Bin(op, a, b) => Expr::Bin(
            *op,
            Box::new(inline_expr(a, funcs)),
            Box::new(inline_expr(b, funcs)),
        ),
        Expr::Neg(a) => Expr::Neg(Box::new(inline_expr(a, funcs))),
        Expr::MemRead(m, idx, w) => Expr::MemRead(m.clone(), Box::new(inline_expr(idx, funcs)), *w),
        Expr::Const(..) | Expr::Var(..) => e.clone(),
    }
}

fn subst(e: &Expr, env: &BTreeMap<String, Expr>) -> Expr {
    match e {
        Expr::Var(name, _) => env.get(name).cloned().unwrap_or_else(|| e.clone()),
        Expr::Bin(op, a, b) => Expr::Bin(*op, Box::new(subst(a, env)), Box::new(subst(b, env))),
        Expr::Neg(a) => Expr::Neg(Box::new(subst(a, env))),
        Expr::Call(name, args) => {
            Expr::Call(name.clone(), args.iter().map(|a| subst(a, env)).collect())
        }
        Expr::MemRead(m, idx, w) => Expr::MemRead(m.clone(), Box::new(subst(idx, env)), *w),
        Expr::Const(..) => e.clone(),
    }
}

/// Folds constant subexpressions throughout the entity.
pub fn fold_entity(entity: &Entity) -> Entity {
    let mut out = entity.clone();
    let fold_stmts = |stmts: &mut Vec<Stmt>| {
        *stmts = stmts.iter().map(fold_stmt).collect();
    };
    for p in &mut out.processes {
        match p {
            Process::Clocked { stmts, .. } => fold_stmts(stmts),
            Process::Fsm { states, .. } => {
                for st in states {
                    fold_stmts(&mut st.stmts);
                }
            }
        }
    }
    out
}

fn fold_stmt(s: &Stmt) -> Stmt {
    match s {
        Stmt::Assign { target, value } => Stmt::Assign {
            target: target.clone(),
            value: fold_expr(value),
        },
        Stmt::MemWrite { mem, index, value } => Stmt::MemWrite {
            mem: mem.clone(),
            index: fold_expr(index),
            value: fold_expr(value),
        },
        Stmt::If { cond, then_, else_ } => Stmt::If {
            cond: fold_expr(cond),
            then_: then_.iter().map(fold_stmt).collect(),
            else_: else_.iter().map(fold_stmt).collect(),
        },
        Stmt::Goto(t) => Stmt::Goto(t.clone()),
    }
}

fn fold_expr(e: &Expr) -> Expr {
    match e {
        Expr::Bin(op, a, b) => {
            let a = fold_expr(a);
            let b = fold_expr(b);
            if let (Expr::Const(x, wa), Expr::Const(y, wb)) = (&a, &b) {
                let w = (*wa).max(*wb);
                let v = match op {
                    BinOp::Add => Some(x + y),
                    BinOp::Sub => Some(x - y),
                    BinOp::Mul => Some(x * y),
                    BinOp::Shl => Some(x << y),
                    BinOp::Shr => Some(x >> y),
                    BinOp::And => Some(x & y),
                    BinOp::Or => Some(x | y),
                    BinOp::Xor => Some(x ^ y),
                    BinOp::Lt => Some((x < y) as i64),
                    BinOp::Eq => Some((x == y) as i64),
                    BinOp::Ne => Some((x != y) as i64),
                };
                if let Some(v) = v {
                    let w = if op.is_compare() { 1 } else { w };
                    return Expr::Const(v, w);
                }
            }
            Expr::Bin(*op, Box::new(a), Box::new(b))
        }
        Expr::Neg(a) => {
            let a = fold_expr(a);
            if let Expr::Const(x, w) = a {
                Expr::Const(-x, w)
            } else {
                Expr::Neg(Box::new(a))
            }
        }
        Expr::MemRead(m, idx, w) => Expr::MemRead(m.clone(), Box::new(fold_expr(idx)), *w),
        Expr::Call(name, args) => Expr::Call(name.clone(), args.iter().map(fold_expr).collect()),
        Expr::Const(..) | Expr::Var(..) => e.clone(),
    }
}

/// Removes internal signals that are never read (and the assignments that
/// drive them). Ports and memories are always kept.
pub fn eliminate_dead_signals(entity: &Entity) -> Entity {
    let mut out = entity.clone();
    loop {
        let mut read: Vec<String> = Vec::new();
        let mut visit_expr = |e: &Expr| collect_reads(e, &mut read);
        for p in &out.processes {
            let stmts: Vec<&Stmt> = match p {
                Process::Clocked { stmts, .. } => stmts.iter().collect(),
                Process::Fsm { states, .. } => states.iter().flat_map(|s| &s.stmts).collect(),
            };
            for s in stmts {
                visit_stmt_reads(s, &mut visit_expr);
            }
        }
        let dead: Vec<String> = out
            .signals
            .iter()
            .filter(|s| !read.contains(&s.name))
            .map(|s| s.name.clone())
            .collect();
        if dead.is_empty() {
            return out;
        }
        out.signals.retain(|s| !dead.contains(&s.name));
        for p in &mut out.processes {
            match p {
                Process::Clocked { stmts, .. } => remove_dead_assigns(stmts, &dead),
                Process::Fsm { states, .. } => {
                    for st in &mut states.iter_mut() {
                        remove_dead_assigns(&mut st.stmts, &dead);
                    }
                }
            }
        }
    }
}

fn remove_dead_assigns(stmts: &mut Vec<Stmt>, dead: &[String]) {
    stmts.retain_mut(|s| match s {
        Stmt::Assign { target, .. } => !dead.contains(target),
        Stmt::If { then_, else_, .. } => {
            remove_dead_assigns(then_, dead);
            remove_dead_assigns(else_, dead);
            true
        }
        _ => true,
    });
}

fn visit_stmt_reads(s: &Stmt, f: &mut impl FnMut(&Expr)) {
    match s {
        Stmt::Assign { value, .. } => f(value),
        Stmt::MemWrite { index, value, .. } => {
            f(index);
            f(value);
        }
        Stmt::If { cond, then_, else_ } => {
            f(cond);
            for s in then_.iter().chain(else_) {
                visit_stmt_reads(s, f);
            }
        }
        Stmt::Goto(_) => {}
    }
}

fn collect_reads(e: &Expr, out: &mut Vec<String>) {
    match e {
        Expr::Var(name, _) => out.push(name.clone()),
        Expr::Bin(_, a, b) => {
            collect_reads(a, out);
            collect_reads(b, out);
        }
        Expr::Neg(a) => collect_reads(a, out),
        Expr::Call(_, args) => {
            for a in args {
                collect_reads(a, out);
            }
        }
        Expr::MemRead(_, idx, _) => collect_reads(idx, out),
        Expr::Const(..) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{e, s, EntityBuilder};
    use crate::ir::Ty;

    fn entity_with_function() -> Entity {
        EntityBuilder::new("lift")
            .input("a", Ty::Signed(16))
            .input("b", Ty::Signed(16))
            .input("c", Ty::Signed(16))
            .output("y", Ty::Signed(16))
            .signal("t", Ty::Signed(16))
            .function(
                "predict",
                &[
                    ("p0", Ty::Signed(16)),
                    ("p1", Ty::Signed(16)),
                    ("p2", Ty::Signed(16)),
                ],
                Ty::Signed(16),
                vec![s::assign("sum", e::add(e::v("p0", 16), e::v("p2", 16)))],
                &[("sum", Ty::Signed(16))],
                e::sub(e::v("p1", 16), e::shr(e::v("sum", 16), 1)),
            )
            .clocked(
                "dp",
                vec![s::assign(
                    "t",
                    e::call("predict", vec![e::v("a", 16), e::v("b", 16), e::v("c", 16)]),
                )],
            )
            .clocked("out", vec![s::assign("y", e::v("t", 16))])
            .build()
    }

    #[test]
    fn inlining_removes_calls_and_functions() {
        let ent = entity_with_function();
        let inlined = inline_entity(&ent);
        assert!(inlined.functions.is_empty());
        // The call is replaced by the substituted body.
        let Process::Clocked { stmts, .. } = &inlined.processes[0] else {
            panic!("expected clocked process");
        };
        let Stmt::Assign { value, .. } = &stmts[0] else {
            panic!("expected assign");
        };
        assert!(!format!("{value:?}").contains("Call"));
        assert!(format!("{value:?}").contains("Sub"));
        inlined.validate().expect("still valid");
    }

    #[test]
    fn inlining_grows_logic_depth_versus_shared_function() {
        use std::collections::BTreeMap;
        let ent = entity_with_function();
        let inlined = inline_entity(&ent);
        let funcs = BTreeMap::new();
        let Process::Clocked { stmts, .. } = &inlined.processes[0] else {
            panic!()
        };
        let Stmt::Assign { value, .. } = &stmts[0] else {
            panic!()
        };
        assert!(value.depth(&funcs) >= 2, "inlined lifting is multi-level");
    }

    #[test]
    fn nested_function_calls_inline_recursively() {
        let ent = EntityBuilder::new("nest")
            .input("x", Ty::Signed(8))
            .output("y", Ty::Signed(8))
            .function(
                "inc",
                &[("v", Ty::Signed(8))],
                Ty::Signed(8),
                vec![],
                &[],
                e::add(e::v("v", 8), e::c(1, 8)),
            )
            .function(
                "inc2",
                &[("v", Ty::Signed(8))],
                Ty::Signed(8),
                vec![],
                &[],
                e::call("inc", vec![e::call("inc", vec![e::v("v", 8)])]),
            )
            .clocked(
                "p",
                vec![s::assign("y", e::call("inc2", vec![e::v("x", 8)]))],
            )
            .build();
        let inlined = inline_entity(&ent);
        let Process::Clocked { stmts, .. } = &inlined.processes[0] else {
            panic!()
        };
        let repr = format!("{:?}", stmts[0]);
        assert!(!repr.contains("Call"));
        // x + 1 + 1 structure.
        assert_eq!(repr.matches("Add").count(), 2);
    }

    #[test]
    fn constant_folding() {
        let ent = EntityBuilder::new("cf")
            .output("y", Ty::Signed(16))
            .clocked(
                "p",
                vec![s::assign(
                    "y",
                    e::add(e::c(3, 16), e::mul(e::c(4, 16), e::c(5, 16))),
                )],
            )
            .build();
        let folded = fold_entity(&ent);
        let Process::Clocked { stmts, .. } = &folded.processes[0] else {
            panic!()
        };
        assert_eq!(
            stmts[0],
            s::assign("y", e::c(23, 16)),
            "3 + 4*5 folds to 23"
        );
    }

    #[test]
    fn dead_signal_elimination_iterates() {
        // chain: a -> b, b never read downstream: both die; y stays.
        let ent = EntityBuilder::new("dse")
            .input("x", Ty::Signed(8))
            .output("y", Ty::Signed(8))
            .signal("a", Ty::Signed(8))
            .signal("b", Ty::Signed(8))
            .clocked(
                "p",
                vec![
                    s::assign("a", e::v("x", 8)),
                    s::assign("b", e::v("a", 8)),
                    s::assign("y", e::v("x", 8)),
                ],
            )
            .build();
        let cleaned = eliminate_dead_signals(&ent);
        assert!(cleaned.signals.is_empty(), "a and b both dead");
        let Process::Clocked { stmts, .. } = &cleaned.processes[0] else {
            panic!()
        };
        assert_eq!(stmts.len(), 1, "only the y assignment remains");
    }

    #[test]
    fn live_signals_survive_dse() {
        let ent = entity_with_function();
        let cleaned = eliminate_dead_signals(&ent);
        assert_eq!(cleaned.signals.len(), 1, "t feeds y, stays");
    }
}
