//! The register-transfer-level intermediate representation.
//!
//! Rich enough to express the synthesisable-OSSS subset the case study
//! uses: typed signals and ports, synchronous memories, synthesisable
//! functions (inlinable), combinational processes and explicit finite
//! state machines.

use std::collections::BTreeMap;

/// A hardware type: a bit or a fixed-width vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ty {
    /// Single bit.
    Bit,
    /// Unsigned vector of the given width.
    Unsigned(u32),
    /// Signed (two's-complement) vector of the given width.
    Signed(u32),
}

impl Ty {
    /// Width in bits.
    pub fn width(self) -> u32 {
        match self {
            Ty::Bit => 1,
            Ty::Unsigned(w) | Ty::Signed(w) => w,
        }
    }

    /// VHDL type denotation.
    pub fn vhdl(self) -> String {
        match self {
            Ty::Bit => "std_logic".to_string(),
            Ty::Unsigned(w) => format!("unsigned({} downto 0)", w - 1),
            Ty::Signed(w) => format!("signed({} downto 0)", w - 1),
        }
    }
}

/// Port direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// Input port.
    In,
    /// Output port.
    Out,
}

/// An entity port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Port {
    /// Port name.
    pub name: String,
    /// Direction.
    pub dir: Dir,
    /// Type.
    pub ty: Ty,
}

/// An internal signal (becomes a register when assigned in an FSM).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignalDecl {
    /// Signal name.
    pub name: String,
    /// Type.
    pub ty: Ty,
}

/// A synchronous on-chip memory (maps to block RAM).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryDecl {
    /// Memory name.
    pub name: String,
    /// Number of words.
    pub words: u32,
    /// Word width in bits.
    pub width: u32,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Left shift.
    Shl,
    /// Arithmetic right shift.
    Shr,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Less-than comparison (1-bit result).
    Lt,
    /// Equality comparison (1-bit result).
    Eq,
    /// Inequality comparison (1-bit result).
    Ne,
}

impl BinOp {
    /// Whether the result is a single bit regardless of operand width.
    pub fn is_compare(self) -> bool {
        matches!(self, BinOp::Lt | BinOp::Eq | BinOp::Ne)
    }

    /// VHDL operator symbol.
    pub fn vhdl(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Shl => "sll",
            BinOp::Shr => "sra",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Lt => "<",
            BinOp::Eq => "=",
            BinOp::Ne => "/=",
        }
    }
}

/// Expressions. Every expression carries enough information to compute
/// its bit width (operands define result widths).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// A literal with an explicit width.
    Const(i64, u32),
    /// A named signal/port/variable of the given width.
    Var(String, u32),
    /// Negation.
    Neg(Box<Expr>),
    /// A binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// A call to a synthesisable function (inlined by the FOSSY pass).
    Call(String, Vec<Expr>),
    /// Synchronous memory read: `mem[idx]`, width taken from the memory.
    MemRead(String, Box<Expr>, u32),
}

impl Expr {
    /// Result width in bits (call widths are resolved against `funcs`).
    pub fn width(&self, funcs: &BTreeMap<String, Function>) -> u32 {
        match self {
            Expr::Const(_, w) | Expr::Var(_, w) | Expr::MemRead(_, _, w) => *w,
            Expr::Neg(e) => e.width(funcs),
            Expr::Bin(op, a, b) => {
                if op.is_compare() {
                    1
                } else if *op == BinOp::Mul {
                    a.width(funcs) + b.width(funcs)
                } else {
                    a.width(funcs).max(b.width(funcs))
                }
            }
            Expr::Call(name, _) => funcs.get(name).map(|f| f.ret.width()).unwrap_or(0),
        }
    }

    /// Logic depth in LUT levels (used by the fmax estimator): constants
    /// and variables are free, each operator adds a level, adders and
    /// multipliers add carry/array depth.
    pub fn depth(&self, funcs: &BTreeMap<String, Function>) -> u32 {
        match self {
            Expr::Const(..) | Expr::Var(..) => 0,
            Expr::MemRead(_, idx, _) => 1 + idx.depth(funcs),
            Expr::Neg(e) => 1 + e.depth(funcs),
            Expr::Bin(op, a, b) => {
                let base = a.depth(funcs).max(b.depth(funcs));
                let w = self.width(funcs);
                let cost = match op {
                    BinOp::Add | BinOp::Sub => 1 + w / 8, // carry chain
                    BinOp::Mul => 2 + w / 4,              // LUT multiplier array
                    BinOp::Shl | BinOp::Shr => 1,
                    _ => 1,
                };
                base + cost
            }
            Expr::Call(name, args) => {
                let inner = funcs.get(name).map(|f| f.body_depth(funcs)).unwrap_or(0);
                let amax = args.iter().map(|a| a.depth(funcs)).max().unwrap_or(0);
                inner + amax
            }
        }
    }
}

/// Statements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `target <= value`.
    Assign {
        /// Assigned signal/variable.
        target: String,
        /// Right-hand side.
        value: Expr,
    },
    /// Synchronous memory write: `mem[idx] <= value`.
    MemWrite {
        /// Memory name.
        mem: String,
        /// Address expression.
        index: Expr,
        /// Written value.
        value: Expr,
    },
    /// Conditional.
    If {
        /// Condition (1-bit).
        cond: Expr,
        /// Then-branch.
        then_: Vec<Stmt>,
        /// Else-branch.
        else_: Vec<Stmt>,
    },
    /// FSM state transition.
    Goto(String),
}

/// A synthesisable function: parameters, one expression-producing body.
///
/// The OSSS input style factors the lifting arithmetic into functions;
/// the FOSSY pass inlines every call site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Parameter names and types.
    pub params: Vec<(String, Ty)>,
    /// Return type.
    pub ret: Ty,
    /// Straight-line body: local assignments followed by the return
    /// expression.
    pub locals: Vec<(String, Ty)>,
    /// Local computations.
    pub body: Vec<Stmt>,
    /// Returned expression.
    pub result: Expr,
}

impl Function {
    /// Logic depth of the function body.
    pub fn body_depth(&self, funcs: &BTreeMap<String, Function>) -> u32 {
        let stmt_depth: u32 = self
            .body
            .iter()
            .map(|s| stmt_depth(s, funcs))
            .max()
            .unwrap_or(0);
        stmt_depth + self.result.depth(funcs)
    }
}

pub(crate) fn stmt_depth(s: &Stmt, funcs: &BTreeMap<String, Function>) -> u32 {
    match s {
        Stmt::Assign { value, .. } => value.depth(funcs),
        Stmt::MemWrite { index, value, .. } => index.depth(funcs).max(value.depth(funcs)) + 1,
        Stmt::If { cond, then_, else_ } => {
            let inner = then_
                .iter()
                .chain(else_)
                .map(|s| stmt_depth(s, funcs))
                .max()
                .unwrap_or(0);
            cond.depth(funcs) + inner + 1 // mux level
        }
        Stmt::Goto(_) => 0,
    }
}

/// One FSM state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct State {
    /// State name.
    pub name: String,
    /// Statements executed in the state (including `Goto`s).
    pub stmts: Vec<Stmt>,
}

/// A clocked process: either a plain pipeline stage (all statements every
/// cycle) or an explicit state machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Process {
    /// A free-running clocked process (pipeline stage register slice).
    Clocked {
        /// Process name.
        name: String,
        /// Statements executed every clock edge.
        stmts: Vec<Stmt>,
    },
    /// An explicit state machine.
    Fsm {
        /// Process name.
        name: String,
        /// States in declaration order; the first is the reset state.
        states: Vec<State>,
    },
}

impl Process {
    /// The process name.
    pub fn name(&self) -> &str {
        match self {
            Process::Clocked { name, .. } | Process::Fsm { name, .. } => name,
        }
    }
}

/// A hardware entity.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Entity {
    /// Entity name.
    pub name: String,
    /// Ports.
    pub ports: Vec<Port>,
    /// Internal signals.
    pub signals: Vec<SignalDecl>,
    /// On-chip memories.
    pub memories: Vec<MemoryDecl>,
    /// Synthesisable functions (empty after inlining).
    pub functions: Vec<Function>,
    /// Processes.
    pub processes: Vec<Process>,
}

impl Entity {
    /// Function lookup table.
    pub fn function_map(&self) -> BTreeMap<String, Function> {
        self.functions
            .iter()
            .map(|f| (f.name.clone(), f.clone()))
            .collect()
    }

    /// Basic well-formedness: unique names, states referenced by `Goto`
    /// exist, functions referenced by calls exist.
    ///
    /// # Errors
    ///
    /// A description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        let mut names = Vec::new();
        for n in self
            .ports
            .iter()
            .map(|p| p.name.as_str())
            .chain(self.signals.iter().map(|s| s.name.as_str()))
            .chain(self.memories.iter().map(|m| m.name.as_str()))
        {
            if names.contains(&n) {
                return Err(format!("duplicate declaration `{n}` in `{}`", self.name));
            }
            names.push(n);
        }
        let funcs = self.function_map();
        for p in &self.processes {
            let states: Vec<&str> = match p {
                Process::Fsm { states, .. } => states.iter().map(|s| s.name.as_str()).collect(),
                Process::Clocked { .. } => Vec::new(),
            };
            let stmts: Vec<&Stmt> = match p {
                Process::Fsm { states, .. } => states.iter().flat_map(|s| &s.stmts).collect(),
                Process::Clocked { stmts, .. } => stmts.iter().collect(),
            };
            for s in stmts {
                validate_stmt(s, &states, &funcs, p.name())?;
            }
        }
        Ok(())
    }
}

fn validate_stmt(
    s: &Stmt,
    states: &[&str],
    funcs: &BTreeMap<String, Function>,
    proc_name: &str,
) -> Result<(), String> {
    match s {
        Stmt::Goto(target) => {
            if !states.contains(&target.as_str()) {
                return Err(format!(
                    "process `{proc_name}` jumps to unknown state `{target}`"
                ));
            }
        }
        Stmt::If { cond, then_, else_ } => {
            validate_expr(cond, funcs, proc_name)?;
            for s in then_.iter().chain(else_) {
                validate_stmt(s, states, funcs, proc_name)?;
            }
        }
        Stmt::Assign { value, .. } => validate_expr(value, funcs, proc_name)?,
        Stmt::MemWrite { index, value, .. } => {
            validate_expr(index, funcs, proc_name)?;
            validate_expr(value, funcs, proc_name)?;
        }
    }
    Ok(())
}

fn validate_expr(
    e: &Expr,
    funcs: &BTreeMap<String, Function>,
    proc_name: &str,
) -> Result<(), String> {
    match e {
        Expr::Call(name, args) => {
            let f = funcs.get(name).ok_or(format!(
                "process `{proc_name}` calls unknown function `{name}`"
            ))?;
            if f.params.len() != args.len() {
                return Err(format!(
                    "call to `{name}` passes {} args, expected {}",
                    args.len(),
                    f.params.len()
                ));
            }
            for a in args {
                validate_expr(a, funcs, proc_name)?;
            }
        }
        Expr::Bin(_, a, b) => {
            validate_expr(a, funcs, proc_name)?;
            validate_expr(b, funcs, proc_name)?;
        }
        Expr::Neg(a) => validate_expr(a, funcs, proc_name)?,
        Expr::MemRead(_, idx, _) => validate_expr(idx, funcs, proc_name)?,
        Expr::Const(..) | Expr::Var(..) => {}
    }
    Ok(())
}

/// A design: a set of entities (one per hardware block).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Design {
    /// Design name.
    pub name: String,
    /// The entities.
    pub entities: Vec<Entity>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var(n: &str, w: u32) -> Expr {
        Expr::Var(n.to_string(), w)
    }

    #[test]
    fn widths() {
        let funcs = BTreeMap::new();
        assert_eq!(Ty::Bit.width(), 1);
        assert_eq!(Ty::Signed(16).width(), 16);
        let add = Expr::Bin(BinOp::Add, Box::new(var("a", 16)), Box::new(var("b", 12)));
        assert_eq!(add.width(&funcs), 16);
        let mul = Expr::Bin(BinOp::Mul, Box::new(var("a", 16)), Box::new(var("b", 16)));
        assert_eq!(mul.width(&funcs), 32);
        let cmp = Expr::Bin(BinOp::Lt, Box::new(var("a", 16)), Box::new(var("b", 16)));
        assert_eq!(cmp.width(&funcs), 1);
    }

    #[test]
    fn depth_grows_with_nesting() {
        let funcs = BTreeMap::new();
        let a = var("a", 16);
        let add = Expr::Bin(BinOp::Add, Box::new(a.clone()), Box::new(a.clone()));
        let nested = Expr::Bin(BinOp::Add, Box::new(add.clone()), Box::new(add.clone()));
        assert!(nested.depth(&funcs) > add.depth(&funcs));
        assert!(add.depth(&funcs) > a.depth(&funcs));
        let mul = Expr::Bin(BinOp::Mul, Box::new(var("a", 16)), Box::new(var("b", 16)));
        assert!(mul.depth(&funcs) > add.depth(&funcs));
    }

    #[test]
    fn validate_catches_unknown_state() {
        let e = Entity {
            name: "e".into(),
            processes: vec![Process::Fsm {
                name: "fsm".into(),
                states: vec![State {
                    name: "s0".into(),
                    stmts: vec![Stmt::Goto("nowhere".into())],
                }],
            }],
            ..Default::default()
        };
        assert!(e.validate().unwrap_err().contains("nowhere"));
    }

    #[test]
    fn validate_catches_unknown_function_and_arity() {
        let mut e = Entity {
            name: "e".into(),
            processes: vec![Process::Clocked {
                name: "p".into(),
                stmts: vec![Stmt::Assign {
                    target: "x".into(),
                    value: Expr::Call("f".into(), vec![]),
                }],
            }],
            ..Default::default()
        };
        assert!(e.validate().is_err());
        e.functions.push(Function {
            name: "f".into(),
            params: vec![("a".into(), Ty::Signed(8))],
            ret: Ty::Signed(8),
            locals: vec![],
            body: vec![],
            result: Expr::Var("a".into(), 8),
        });
        // Arity mismatch now.
        assert!(e.validate().unwrap_err().contains("expected 1"));
    }

    #[test]
    fn validate_catches_duplicate_names() {
        let e = Entity {
            name: "e".into(),
            ports: vec![Port {
                name: "x".into(),
                dir: Dir::In,
                ty: Ty::Bit,
            }],
            signals: vec![SignalDecl {
                name: "x".into(),
                ty: Ty::Bit,
            }],
            ..Default::default()
        };
        assert!(e.validate().unwrap_err().contains("duplicate"));
    }

    #[test]
    fn call_depth_includes_body() {
        let mut funcs = BTreeMap::new();
        funcs.insert(
            "lift".to_string(),
            Function {
                name: "lift".into(),
                params: vec![("a".into(), Ty::Signed(16))],
                ret: Ty::Signed(16),
                locals: vec![],
                body: vec![],
                result: Expr::Bin(
                    BinOp::Add,
                    Box::new(var("a", 16)),
                    Box::new(Expr::Const(1, 16)),
                ),
            },
        );
        let call = Expr::Call("lift".into(), vec![var("x", 16)]);
        assert!(call.depth(&funcs) > 0);
    }
}
