//! Deterministic transport fault injection.
//!
//! [`FaultyChannel`] decorates any [`Channel`] (OPB bus, P2P link) with a
//! seeded fault process: per-word bit flips, whole-transfer drops, and
//! bounded arbitration stalls. Faults are keyed off a monotonic transfer
//! counter hashed with the seed — never off wall-clock or a global RNG —
//! so every replay of a simulation is bit-identical, which is what makes
//! fault-sweep experiments and their regression tests reproducible.
//!
//! The decorator is transparent for timing bookkeeping: `stats()`
//! forwards to the inner channel (words still occupy the wires whether
//! or not they arrive intact), while the injected faults are accounted
//! separately in [`FaultStats`].

use std::sync::Arc;

use osss_sim::{Context, SimResult, SimTime};
use parking_lot::Mutex;

use crate::channel::{Channel, ChannelStats, TransferOutcome};

/// Domain-separation constants for the per-fault-kind hash streams.
const STREAM_TRANSFER: u64 = 0x7452_414E_5346_4552; // "TRANSFER"
const STREAM_DROP: u64 = 0x4452_4F50_4452_4F50; // "DROPDROP"
const STREAM_FLIP: u64 = 0x464C_4950_464C_4950; // "FLIPFLIP"
const STREAM_STALL: u64 = 0x5354_414C_5354_414C; // "STALSTAL"

/// A splitmix64-style hash of `(seed, stream, n)`.
///
/// Used as the deterministic noise source for fault decisions and for
/// retry-backoff jitter: same inputs, same 64 bits, on every run and
/// every platform.
pub(crate) fn mix(seed: u64, stream: u64, n: u64) -> u64 {
    let mut z =
        seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ n.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a hash to a uniform value in `[0, 1)` with 53 bits of precision.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// The seeded fault process driving one [`FaultyChannel`].
///
/// All rates are probabilities in `[0, 1]` evaluated against the
/// deterministic hash stream; `none(seed)` is the identity process (no
/// faults at any rate), useful for transparency tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed for the deterministic fault streams.
    pub seed: u64,
    /// Probability that any single transferred word is damaged.
    pub bit_flip_per_word: f64,
    /// Probability that a whole transfer is lost.
    pub drop_rate: f64,
    /// Probability that a transfer suffers an extra arbitration stall.
    pub stall_rate: f64,
    /// Upper bound on one injected stall (inclusive).
    pub max_stall: SimTime,
}

impl FaultConfig {
    /// A fault-free process: the decorator becomes a pure pass-through.
    pub fn none(seed: u64) -> Self {
        FaultConfig {
            seed,
            bit_flip_per_word: 0.0,
            drop_rate: 0.0,
            stall_rate: 0.0,
            max_stall: SimTime::ZERO,
        }
    }

    /// Sets the per-word bit-flip probability.
    pub fn with_bit_flips(mut self, rate: f64) -> Self {
        self.bit_flip_per_word = rate;
        self
    }

    /// Sets the dropped-transfer probability.
    pub fn with_drops(mut self, rate: f64) -> Self {
        self.drop_rate = rate;
        self
    }

    /// Sets the stall probability and the latency-spike bound.
    pub fn with_stalls(mut self, rate: f64, max_stall: SimTime) -> Self {
        self.stall_rate = rate;
        self.max_stall = max_stall;
        self
    }
}

/// What the fault process did to the traffic of one channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Transfers that crossed the decorator.
    pub transfers: u64,
    /// Words that crossed the decorator.
    pub words: u64,
    /// Transfers lost entirely.
    pub dropped: u64,
    /// Transfers delivered with at least one damaged word.
    pub corrupt_transfers: u64,
    /// Total damaged words.
    pub corrupt_words: u64,
    /// Injected latency spikes.
    pub stalls: u64,
    /// Total injected stall time.
    pub stall_time: SimTime,
}

impl FaultStats {
    /// Accumulates `other` into `self`, saturating at the numeric bounds.
    pub fn merge(&mut self, other: &FaultStats) {
        self.transfers = self.transfers.saturating_add(other.transfers);
        self.words = self.words.saturating_add(other.words);
        self.dropped = self.dropped.saturating_add(other.dropped);
        self.corrupt_transfers = self
            .corrupt_transfers
            .saturating_add(other.corrupt_transfers);
        self.corrupt_words = self.corrupt_words.saturating_add(other.corrupt_words);
        self.stalls = self.stalls.saturating_add(other.stalls);
        self.stall_time = self.stall_time.saturating_add(other.stall_time);
    }

    /// Exports the snapshot into `reg` under `<prefix>.` (one counter
    /// per field; `stall_time` as `<prefix>.stall_ps`).
    pub fn export_to(&self, reg: &osss_sim::probe::MetricsRegistry, prefix: &str) {
        reg.add_counter(&format!("{prefix}.transfers"), self.transfers);
        reg.add_counter(&format!("{prefix}.words"), self.words);
        reg.add_counter(&format!("{prefix}.dropped"), self.dropped);
        reg.add_counter(
            &format!("{prefix}.corrupt_transfers"),
            self.corrupt_transfers,
        );
        reg.add_counter(&format!("{prefix}.corrupt_words"), self.corrupt_words);
        reg.add_counter(&format!("{prefix}.stalls"), self.stalls);
        reg.add_counter(&format!("{prefix}.stall_ps"), self.stall_time.as_ps());
    }
}

impl std::ops::AddAssign<FaultStats> for FaultStats {
    fn add_assign(&mut self, rhs: FaultStats) {
        self.merge(&rhs);
    }
}

struct FaultState {
    /// Monotonic transfer counter: the deterministic fault-stream index.
    counter: u64,
    stats: FaultStats,
}

/// A [`Channel`] decorator that injects deterministic transport faults.
///
/// Wraps any inner channel; ideal callers (`Channel::transfer`) see
/// dropped and corrupted frames as silently delivered — only
/// [`Channel::transfer_outcome`] callers (the reliable RMI layer) learn
/// the frame's fate. Timing is always truthful: a dropped frame pays the
/// same arbitration and wire time as a delivered one.
///
/// # Example
///
/// ```
/// use osss_sim::{Simulation, Frequency};
/// use osss_vta::{Channel, FaultConfig, FaultyChannel, P2pChannel};
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), osss_sim::SimError> {
/// let mut sim = Simulation::new();
/// let link = Arc::new(P2pChannel::new(&mut sim, "link", Frequency::mhz(100)));
/// let faulty = Arc::new(FaultyChannel::new(link, FaultConfig::none(42).with_drops(1.0)));
/// let probe = Arc::clone(&faulty);
/// sim.spawn_process("client", move |ctx| {
///     let outcome = probe.transfer_outcome(ctx, 64, 0)?;
///     assert!(!outcome.is_clean());
///     Ok(())
/// });
/// sim.run()?.expect_all_finished()?;
/// assert_eq!(faulty.fault_stats().dropped, 1);
/// # Ok(())
/// # }
/// ```
pub struct FaultyChannel {
    inner: Arc<dyn Channel>,
    config: FaultConfig,
    state: Mutex<FaultState>,
}

impl FaultyChannel {
    /// Wraps `inner` with the fault process described by `config`.
    pub fn new(inner: Arc<dyn Channel>, config: FaultConfig) -> Self {
        FaultyChannel {
            inner,
            config,
            state: Mutex::new(FaultState {
                counter: 0,
                stats: FaultStats::default(),
            }),
        }
    }

    /// The fault process configuration.
    pub fn config(&self) -> FaultConfig {
        self.config
    }

    /// Snapshot of the injected-fault accounting.
    pub fn fault_stats(&self) -> FaultStats {
        self.state.lock().stats
    }
}

impl Channel for FaultyChannel {
    fn transfer(&self, ctx: &Context, words: usize, priority: u32) -> SimResult<()> {
        self.transfer_outcome(ctx, words, priority).map(|_| ())
    }

    fn transfer_outcome(
        &self,
        ctx: &Context,
        words: usize,
        priority: u32,
    ) -> SimResult<TransferOutcome> {
        let cfg = &self.config;
        let n = {
            let mut st = self.state.lock();
            let n = st.counter;
            st.counter += 1;
            n
        };
        let base = mix(cfg.seed, STREAM_TRANSFER, n);

        // Latency spike first: it models losing extra arbitration rounds
        // before the grant, so it delays the whole transfer.
        let mut stall = SimTime::ZERO;
        if cfg.stall_rate > 0.0 && unit(mix(base, STREAM_STALL, 0)) < cfg.stall_rate {
            stall = SimTime::ps(mix(base, STREAM_STALL, 1) % (cfg.max_stall.as_ps() + 1));
            ctx.wait(stall)?;
        }

        // The words occupy the wires whether or not they arrive intact,
        // so the inner channel's time and stats are always paid.
        self.inner.transfer(ctx, words, priority)?;

        let outcome = if cfg.drop_rate > 0.0 && unit(mix(base, STREAM_DROP, 0)) < cfg.drop_rate {
            TransferOutcome::Dropped
        } else if cfg.bit_flip_per_word > 0.0 {
            let corrupt_words = (0..words as u64)
                .filter(|&w| unit(mix(base, STREAM_FLIP, w)) < cfg.bit_flip_per_word)
                .count() as u64;
            if corrupt_words > 0 {
                TransferOutcome::Corrupt { corrupt_words }
            } else {
                TransferOutcome::Clean
            }
        } else {
            TransferOutcome::Clean
        };

        let mut st = self.state.lock();
        let s = &mut st.stats;
        s.transfers = s.transfers.saturating_add(1);
        s.words = s.words.saturating_add(words as u64);
        if !stall.is_zero() {
            s.stalls = s.stalls.saturating_add(1);
            s.stall_time = s.stall_time.saturating_add(stall);
        }
        match outcome {
            TransferOutcome::Dropped => s.dropped = s.dropped.saturating_add(1),
            TransferOutcome::Corrupt { corrupt_words } => {
                s.corrupt_transfers = s.corrupt_transfers.saturating_add(1);
                s.corrupt_words = s.corrupt_words.saturating_add(corrupt_words);
            }
            TransferOutcome::Clean => {}
        }
        Ok(outcome)
    }

    fn name(&self) -> String {
        format!("faulty({})", self.inner.name())
    }

    fn stats(&self) -> ChannelStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::p2p::P2pChannel;
    use osss_sim::{Frequency, Simulation};

    fn run_outcomes(
        config: FaultConfig,
        transfers: usize,
        words: usize,
    ) -> (Vec<bool>, FaultStats) {
        let mut sim = Simulation::new();
        let link = Arc::new(P2pChannel::new(&mut sim, "link", Frequency::mhz(100)));
        let faulty = Arc::new(FaultyChannel::new(link, config));
        let probe = Arc::clone(&faulty);
        let out = Arc::new(Mutex::new(Vec::new()));
        let out2 = Arc::clone(&out);
        sim.spawn_process("client", move |ctx| {
            for _ in 0..transfers {
                let o = probe.transfer_outcome(ctx, words, 0)?;
                out2.lock().push(o.is_clean());
            }
            Ok(())
        });
        sim.run()
            .expect("run")
            .expect_all_finished()
            .expect("all done");
        let v = out.lock().clone();
        (v, faulty.fault_stats())
    }

    #[test]
    fn same_seed_replays_bit_identically() {
        let cfg = FaultConfig::none(7)
            .with_drops(0.3)
            .with_bit_flips(0.01)
            .with_stalls(0.2, SimTime::us(5));
        let (a, sa) = run_outcomes(cfg, 50, 32);
        let (b, sb) = run_outcomes(cfg, 50, 32);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
        assert!(
            sa.dropped > 0 || sa.corrupt_transfers > 0,
            "faults expected"
        );
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = FaultConfig::none(1).with_drops(0.5);
        let (a, _) = run_outcomes(cfg, 64, 8);
        let (b, _) = run_outcomes(FaultConfig { seed: 2, ..cfg }, 64, 8);
        assert_ne!(a, b, "two seeds matching on 64 transfers is ~2^-64");
    }

    #[test]
    fn zero_rates_are_fully_transparent() {
        let (outcomes, stats) = run_outcomes(FaultConfig::none(99), 20, 16);
        assert!(outcomes.iter().all(|&c| c));
        assert_eq!(stats.dropped, 0);
        assert_eq!(stats.corrupt_transfers, 0);
        assert_eq!(stats.stalls, 0);
        assert_eq!(stats.transfers, 20);
        assert_eq!(stats.words, 320);
    }

    #[test]
    fn drop_rate_one_loses_every_transfer() {
        let (outcomes, stats) = run_outcomes(FaultConfig::none(3).with_drops(1.0), 10, 4);
        assert!(outcomes.iter().all(|&c| !c));
        assert_eq!(stats.dropped, 10);
    }

    #[test]
    fn flip_rate_one_corrupts_every_word() {
        let (outcomes, stats) = run_outcomes(FaultConfig::none(4).with_bit_flips(1.0), 5, 8);
        assert!(outcomes.iter().all(|&c| !c));
        assert_eq!(stats.corrupt_transfers, 5);
        assert_eq!(stats.corrupt_words, 40);
    }

    #[test]
    fn stalls_are_bounded_and_slow_the_run() {
        let max = SimTime::us(3);
        let cfg = FaultConfig::none(5).with_stalls(1.0, max);
        let (_, stats) = run_outcomes(cfg, 10, 4);
        assert_eq!(stats.stalls, 10);
        assert!(stats.stall_time <= max * 10);
        assert!(!stats.stall_time.is_zero(), "rate 1.0 must inject stalls");
    }
}
