//! Declarative platform description: the input to the synthesis flow's
//! MHS/MSS generators and the record of an architecture exploration point.

/// One processor instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessorDesc {
    /// Instance name (e.g. `ppc405_0`).
    pub name: String,
    /// Clock in MHz.
    pub clock_mhz: u32,
    /// Names of the software tasks mapped onto it.
    pub tasks: Vec<String>,
}

/// One shared bus instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BusDesc {
    /// Instance name (e.g. `opb_0`).
    pub name: String,
    /// Clock in MHz.
    pub clock_mhz: u32,
    /// Names of the masters attached to the bus.
    pub masters: Vec<String>,
    /// Names of the slaves attached to the bus.
    pub slaves: Vec<String>,
}

/// One point-to-point link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct P2pDesc {
    /// Instance name.
    pub name: String,
    /// Source component.
    pub from: String,
    /// Destination component.
    pub to: String,
}

/// One memory instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryDesc {
    /// Instance name (e.g. `bram_0`, `ddr_0`).
    pub name: String,
    /// Kind tag (`bram` or `ddr`).
    pub kind: String,
    /// Size in kilobytes.
    pub size_kb: u32,
}

/// A complete Virtual Target Architecture platform: what the synthesis
/// flow turns into MHS/MSS project files (Figure 4 of the paper).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlatformDesc {
    /// Platform name.
    pub name: String,
    /// Target device (e.g. `virtex4-lx25`).
    pub device: String,
    /// Processors.
    pub processors: Vec<ProcessorDesc>,
    /// Shared buses.
    pub buses: Vec<BusDesc>,
    /// Point-to-point links.
    pub p2p_links: Vec<P2pDesc>,
    /// Memories.
    pub memories: Vec<MemoryDesc>,
    /// Hardware block instance names (shared objects and modules).
    pub hw_blocks: Vec<String>,
}

impl PlatformDesc {
    /// Starts a description for the given platform/device pair.
    pub fn new(name: &str, device: &str) -> Self {
        PlatformDesc {
            name: name.to_string(),
            device: device.to_string(),
            ..Default::default()
        }
    }

    /// Adds a processor with its mapped tasks.
    pub fn processor(mut self, name: &str, clock_mhz: u32, tasks: &[&str]) -> Self {
        self.processors.push(ProcessorDesc {
            name: name.to_string(),
            clock_mhz,
            tasks: tasks.iter().map(|s| s.to_string()).collect(),
        });
        self
    }

    /// Adds a shared bus.
    pub fn bus(mut self, name: &str, clock_mhz: u32, masters: &[&str], slaves: &[&str]) -> Self {
        self.buses.push(BusDesc {
            name: name.to_string(),
            clock_mhz,
            masters: masters.iter().map(|s| s.to_string()).collect(),
            slaves: slaves.iter().map(|s| s.to_string()).collect(),
        });
        self
    }

    /// Adds a point-to-point link.
    pub fn p2p(mut self, name: &str, from: &str, to: &str) -> Self {
        self.p2p_links.push(P2pDesc {
            name: name.to_string(),
            from: from.to_string(),
            to: to.to_string(),
        });
        self
    }

    /// Adds a memory.
    pub fn memory(mut self, name: &str, kind: &str, size_kb: u32) -> Self {
        self.memories.push(MemoryDesc {
            name: name.to_string(),
            kind: kind.to_string(),
            size_kb,
        });
        self
    }

    /// Adds a hardware block instance.
    pub fn hw_block(mut self, name: &str) -> Self {
        self.hw_blocks.push(name.to_string());
        self
    }

    /// The ML401-board platform of the case study: one processor, the OPB
    /// bus, DDR behind a memory controller, block RAM, and the HW/SW and
    /// IDWT hardware blocks.
    pub fn ml401_case_study() -> Self {
        PlatformDesc::new("jpeg2000_ml401", "virtex4-lx25")
            .processor("ppc405_0", 100, &["arith_decoder_ict_dcshift"])
            .bus(
                "opb_0",
                100,
                &["ppc405_0"],
                &["hwsw_shared_object", "ddr_mch_0", "bram_0"],
            )
            .p2p("link_idwt_params_0", "idwt2d_0", "idwt53_0")
            .p2p("link_idwt_params_1", "idwt2d_0", "idwt97_0")
            .memory("ddr_mch_0", "ddr", 65_536)
            .memory("bram_0", "bram", 64)
            .hw_block("hwsw_shared_object")
            .hw_block("idwt2d_0")
            .hw_block("idwt53_0")
            .hw_block("idwt97_0")
    }

    /// Basic consistency checks: unique names, bus endpoints exist.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first inconsistency found.
    pub fn validate(&self) -> Result<(), String> {
        let mut names: Vec<&str> = Vec::new();
        for n in self
            .processors
            .iter()
            .map(|p| p.name.as_str())
            .chain(self.buses.iter().map(|b| b.name.as_str()))
            .chain(self.memories.iter().map(|m| m.name.as_str()))
            .chain(self.hw_blocks.iter().map(|s| s.as_str()))
        {
            if names.contains(&n) {
                return Err(format!("duplicate instance name `{n}`"));
            }
            names.push(n);
        }
        for bus in &self.buses {
            for endpoint in bus.masters.iter().chain(&bus.slaves) {
                if !names.contains(&endpoint.as_str()) {
                    return Err(format!(
                        "bus `{}` references unknown instance `{endpoint}`",
                        bus.name
                    ));
                }
            }
        }
        for link in &self.p2p_links {
            for endpoint in [&link.from, &link.to] {
                if !names.contains(&endpoint.as_str()) {
                    return Err(format!(
                        "p2p `{}` references unknown instance `{endpoint}`",
                        link.name
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_study_platform_is_valid() {
        let p = PlatformDesc::ml401_case_study();
        p.validate().expect("valid platform");
        assert_eq!(p.processors.len(), 1);
        assert_eq!(p.buses.len(), 1);
        assert_eq!(p.p2p_links.len(), 2);
        assert_eq!(p.device, "virtex4-lx25");
    }

    #[test]
    fn duplicate_names_rejected() {
        let p = PlatformDesc::new("x", "d")
            .processor("a", 100, &[])
            .hw_block("a");
        assert!(p.validate().is_err());
    }

    #[test]
    fn dangling_bus_endpoint_rejected() {
        let p = PlatformDesc::new("x", "d").bus("opb", 100, &["ghost"], &[]);
        let err = p.validate().unwrap_err();
        assert!(err.contains("ghost"));
    }

    #[test]
    fn dangling_p2p_endpoint_rejected() {
        let p = PlatformDesc::new("x", "d")
            .hw_block("a")
            .p2p("l", "a", "nowhere");
        assert!(p.validate().is_err());
    }
}
