//! Explicit memories: Xilinx block RAM and a multi-channel DDR controller.
//!
//! On the Application Layer, shared-object data members behave like
//! registers (zero access time). The VTA refinement step maps large
//! arrays into explicit memories — in the case study an
//! `xilinx_block_ram<osss_array<short>, 32, 16>` — which both bounds FPGA
//! slice usage and adds per-access cycles. That added latency is the main
//! source of the IDWT-time inflation between models 3 and 6a in Table 1.

use std::sync::Arc;

use parking_lot::Mutex;

use osss_core::{sched::Fcfs, SharedObject};
use osss_sim::{Context, Frequency, SimResult, SimTime, Simulation};

/// Access statistics of a memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemStats {
    /// Word reads served.
    pub reads: u64,
    /// Word writes served.
    pub writes: u64,
    /// Total time spent in memory accesses.
    pub access_time: SimTime,
}

impl MemStats {
    /// Exports the snapshot into `reg` as `<prefix>.reads`,
    /// `<prefix>.writes` and `<prefix>.access_ps`.
    pub fn export_to(&self, reg: &osss_sim::probe::MetricsRegistry, prefix: &str) {
        reg.add_counter(&format!("{prefix}.reads"), self.reads);
        reg.add_counter(&format!("{prefix}.writes"), self.writes);
        reg.add_counter(&format!("{prefix}.access_ps"), self.access_time.as_ps());
    }
}

struct BramInner<T> {
    name: String,
    freq: Frequency,
    read_cycles: u64,
    write_cycles: u64,
    data: Mutex<Vec<T>>,
    stats: Mutex<MemStats>,
}

/// A synchronous block RAM holding `T` words: single-cycle-class access
/// latency, charged per access (or in bulk for burst loops, which keeps
/// event counts tractable without changing total time).
///
/// # Example
///
/// ```
/// use osss_sim::{Simulation, SimTime, Frequency};
/// use osss_vta::XilinxBlockRam;
///
/// # fn main() -> Result<(), osss_sim::SimError> {
/// let mut sim = Simulation::new();
/// let ram = XilinxBlockRam::<i16>::new(&mut sim, "tile_ram", 1024, Frequency::mhz(100));
/// let ram2 = ram.clone();
/// sim.spawn_process("hw", move |ctx| {
///     ram2.write(ctx, 5, -42)?;
///     assert_eq!(ram2.read(ctx, 5)?, -42);
///     Ok(())
/// });
/// // One write + one read at one cycle each.
/// assert_eq!(sim.run()?.end_time, SimTime::ns(20));
/// # Ok(())
/// # }
/// ```
pub struct XilinxBlockRam<T> {
    inner: Arc<BramInner<T>>,
}

impl<T> Clone for XilinxBlockRam<T> {
    fn clone(&self) -> Self {
        XilinxBlockRam {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: Copy + Default + Send + 'static> XilinxBlockRam<T> {
    /// Creates a zero-initialised RAM of `words` entries with one-cycle
    /// read and write latency.
    pub fn new(sim: &mut Simulation, name: &str, words: usize, freq: Frequency) -> Self {
        let _ = sim; // signature symmetry with the other resources
        XilinxBlockRam {
            inner: Arc::new(BramInner {
                name: name.to_string(),
                freq,
                read_cycles: 1,
                write_cycles: 1,
                data: Mutex::new(vec![T::default(); words]),
                stats: Mutex::new(MemStats::default()),
            }),
        }
    }

    /// The memory name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Capacity in words.
    pub fn words(&self) -> usize {
        self.inner.data.lock().len()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> MemStats {
        *self.inner.stats.lock()
    }

    /// Reads one word, charging the read latency.
    ///
    /// # Errors
    ///
    /// [`osss_sim::SimError::Terminated`] on shutdown.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn read(&self, ctx: &Context, addr: usize) -> SimResult<T> {
        let t = self.inner.freq.cycles(self.inner.read_cycles);
        ctx.wait(t)?;
        let mut stats = self.inner.stats.lock();
        stats.reads += 1;
        stats.access_time += t;
        drop(stats);
        Ok(self.inner.data.lock()[addr])
    }

    /// Writes one word, charging the write latency.
    ///
    /// # Errors
    ///
    /// [`osss_sim::SimError::Terminated`] on shutdown.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn write(&self, ctx: &Context, addr: usize, value: T) -> SimResult<()> {
        let t = self.inner.freq.cycles(self.inner.write_cycles);
        ctx.wait(t)?;
        let mut stats = self.inner.stats.lock();
        stats.writes += 1;
        stats.access_time += t;
        drop(stats);
        self.inner.data.lock()[addr] = value;
        Ok(())
    }

    /// Bulk accounting for a burst of `reads` + `writes` accesses done by
    /// a tight hardware loop: charges the exact cycle cost in one wait
    /// instead of one event per access.
    ///
    /// # Errors
    ///
    /// [`osss_sim::SimError::Terminated`] on shutdown.
    pub fn charge_burst(&self, ctx: &Context, reads: u64, writes: u64) -> SimResult<()> {
        let t = self
            .inner
            .freq
            .cycles(reads * self.inner.read_cycles + writes * self.inner.write_cycles);
        ctx.wait(t)?;
        let mut stats = self.inner.stats.lock();
        stats.reads += reads;
        stats.writes += writes;
        stats.access_time += t;
        Ok(())
    }

    /// Direct (zero-time) access to the backing store, for loading test
    /// data and checking results outside the timed path.
    pub fn with_data<R>(&self, f: impl FnOnce(&mut Vec<T>) -> R) -> R {
        f(&mut self.inner.data.lock())
    }
}

/// A multi-channel DDR controller: each channel issues burst transfers;
/// all channels arbitrate for the single DRAM device.
///
/// Models the case study's MCH DDR controller that feeds the PowerPC and
/// the HW subsystem from one external RAM.
#[derive(Debug, Clone)]
pub struct DdrController {
    device: SharedObject<()>,
    freq: Frequency,
    /// Cycles to open a row / set up a burst.
    setup_cycles: u64,
    /// Words per burst beat group.
    burst_words: u64,
    /// Cycles per burst.
    burst_cycles: u64,
}

impl DdrController {
    /// Creates a controller with case-study-like timing: 100 MHz, 10-cycle
    /// setup, 8-word bursts at 4 cycles each.
    pub fn new(sim: &mut Simulation, name: &str, freq: Frequency) -> Self {
        DdrController {
            device: SharedObject::new(sim, name, (), Fcfs::new()),
            freq,
            setup_cycles: 10,
            burst_words: 8,
            burst_cycles: 4,
        }
    }

    /// The time a `words`-word transfer occupies the device.
    pub fn transfer_time(&self, words: usize) -> SimTime {
        let bursts = (words as u64).div_ceil(self.burst_words).max(1);
        self.freq
            .cycles(self.setup_cycles + bursts * self.burst_cycles)
    }

    /// Performs a channel transfer of `words` words (read or write — the
    /// timing model is symmetric), arbitrating against other channels.
    ///
    /// # Errors
    ///
    /// [`osss_sim::SimError::Terminated`] on shutdown.
    pub fn transfer(&self, ctx: &Context, words: usize) -> SimResult<()> {
        let dur = self.transfer_time(words);
        self.device.call(ctx, |_, ctx| ctx.wait(dur))
    }

    /// Total time the device was busy.
    pub fn busy_time(&self) -> SimTime {
        self.device.stats().total_busy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bram_read_write_latency() {
        let mut sim = Simulation::new();
        let ram = XilinxBlockRam::<i32>::new(&mut sim, "r", 16, Frequency::mhz(100));
        let ram2 = ram.clone();
        sim.spawn_process("p", move |ctx| {
            for i in 0..4 {
                ram2.write(ctx, i, i as i32 * 10)?;
            }
            for i in 0..4 {
                assert_eq!(ram2.read(ctx, i)?, i as i32 * 10);
            }
            Ok(())
        });
        // 8 accesses at 1 cycle = 80 ns.
        assert_eq!(sim.run().expect("run").end_time, SimTime::ns(80));
        let s = ram.stats();
        assert_eq!(s.reads, 4);
        assert_eq!(s.writes, 4);
        assert_eq!(s.access_time, SimTime::ns(80));
    }

    #[test]
    fn burst_charging_equals_individual_accesses() {
        let mut sim = Simulation::new();
        let ram = XilinxBlockRam::<i16>::new(&mut sim, "r", 1024, Frequency::mhz(100));
        let ram2 = ram.clone();
        sim.spawn_process("p", move |ctx| ram2.charge_burst(ctx, 600, 400));
        assert_eq!(sim.run().expect("run").end_time, SimTime::ns(10_000));
        assert_eq!(ram.stats().reads, 600);
        assert_eq!(ram.stats().writes, 400);
    }

    #[test]
    fn with_data_is_untimed() {
        let mut sim = Simulation::new();
        let ram = XilinxBlockRam::<i32>::new(&mut sim, "r", 8, Frequency::mhz(100));
        ram.with_data(|d| d[3] = 7);
        let ram2 = ram.clone();
        sim.spawn_process("p", move |ctx| {
            assert_eq!(ram2.read(ctx, 3)?, 7);
            Ok(())
        });
        sim.run().expect("run");
    }

    #[test]
    fn ddr_channels_contend_for_device() {
        let mut sim = Simulation::new();
        let ddr = DdrController::new(&mut sim, "ddr", Frequency::mhz(100));
        let per = ddr.transfer_time(64); // 10 + 8*4 = 42 cycles
        assert_eq!(per, SimTime::ns(420));
        for i in 0..3 {
            let ddr = ddr.clone();
            sim.spawn_process(&format!("ch{i}"), move |ctx| ddr.transfer(ctx, 64));
        }
        assert_eq!(sim.run().expect("run").end_time, per * 3);
        assert_eq!(ddr.busy_time(), per * 3);
    }

    #[test]
    fn ddr_burst_rounding() {
        let mut sim = Simulation::new();
        let ddr = DdrController::new(&mut sim, "ddr", Frequency::mhz(100));
        // 1 word still needs one burst: 14 cycles.
        assert_eq!(ddr.transfer_time(1), SimTime::ns(140));
        // 9 words -> 2 bursts: 18 cycles.
        assert_eq!(ddr.transfer_time(9), SimTime::ns(180));
        drop(sim);
    }
}
