//! Dedicated point-to-point channels.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use osss_core::{sched::Fcfs, SharedObject};
use osss_sim::{Context, Frequency, SimResult, SimTime, Simulation};

use crate::channel::{Channel, ChannelStats};

/// A dedicated point-to-point link: one word per cycle, no shared-medium
/// contention (only back-to-back transfers on the *same* link queue).
///
/// Mapping the IDWT-block links onto P2P channels instead of the shared
/// bus is the 6a → 6b / 7a → 7b refinement of the case study.
#[derive(Debug, Clone)]
pub struct P2pChannel {
    so: SharedObject<()>,
    freq: Frequency,
    cycles_per_word: u64,
    words: Arc<AtomicU64>,
}

impl P2pChannel {
    /// Creates a link clocked at `freq`, one word per cycle.
    pub fn new(sim: &mut Simulation, name: &str, freq: Frequency) -> Self {
        P2pChannel {
            so: SharedObject::new(sim, name, (), Fcfs::new()),
            freq,
            cycles_per_word: 1,
            words: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The duration of a `words`-word transfer.
    pub fn transfer_time(&self, words: usize) -> SimTime {
        self.freq.cycles(self.cycles_per_word * words.max(1) as u64)
    }
}

impl Channel for P2pChannel {
    fn transfer(&self, ctx: &Context, words: usize, _priority: u32) -> SimResult<()> {
        let dur = self.transfer_time(words);
        self.words.fetch_add(words as u64, Ordering::Relaxed);
        self.so.call(ctx, |_, ctx| ctx.wait(dur))
    }

    fn name(&self) -> String {
        self.so.name().to_string()
    }

    fn stats(&self) -> ChannelStats {
        let s = self.so.stats();
        ChannelStats {
            transfers: s.calls,
            words: self.words.load(Ordering::Relaxed),
            busy: s.total_busy,
            arbitration_wait: s.total_arbitration_wait,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p2p_is_faster_than_bus_for_same_payload() {
        use crate::bus::{BusConfig, OpbBus};
        let mut sim = Simulation::new();
        let p2p = P2pChannel::new(&mut sim, "link", Frequency::mhz(100));
        let bus = OpbBus::new(&mut sim, "opb", BusConfig::opb_100mhz());
        assert!(p2p.transfer_time(1000) < bus.transfer_time(1000));
        drop(sim);
    }

    #[test]
    fn independent_links_do_not_contend() {
        let mut sim = Simulation::new();
        for i in 0..3 {
            let link = P2pChannel::new(&mut sim, &format!("link{i}"), Frequency::mhz(100));
            sim.spawn_process(&format!("m{i}"), move |ctx| link.transfer(ctx, 1000, 0));
        }
        // All three 1000-cycle transfers run in parallel.
        assert_eq!(sim.run().expect("run").end_time, SimTime::us(10));
    }

    #[test]
    fn same_link_serialises() {
        let mut sim = Simulation::new();
        let link = P2pChannel::new(&mut sim, "link", Frequency::mhz(100));
        for i in 0..2 {
            let link = link.clone();
            sim.spawn_process(&format!("m{i}"), move |ctx| link.transfer(ctx, 1000, 0));
        }
        assert_eq!(sim.run().expect("run").end_time, SimTime::us(20));
    }

    #[test]
    fn zero_word_transfer_costs_one_cycle() {
        let mut sim = Simulation::new();
        let link = P2pChannel::new(&mut sim, "link", Frequency::mhz(100));
        assert_eq!(link.transfer_time(0), SimTime::ns(10));
        drop(sim);
    }
}
