//! Reliable RMI: CRC-framed transfers with timeout, retry, and backoff.
//!
//! [`RmiService`] assumes a perfect transport. [`ReliableRmi`] wraps it
//! for lossy channels ([`crate::FaultyChannel`]): every frame carries a
//! payload-length + CRC32 trailer ([`RELIABLE_TRAILER_WORDS`] words), the
//! receiver rejects damaged frames, and a [`RetryPolicy`] re-sends them —
//! deadline via [`Context::wait_event_timeout`], bounded retries,
//! simulated-time exponential backoff with deterministic jitter. The
//! method body still executes **exactly once**: only transport phases
//! retry (on a response-phase failure the server's cached reply is
//! re-transferred, so the client only re-pays wire time).
//!
//! All randomness comes from the same seeded hash stream as the fault
//! layer, so a fault-sweep replay is bit-identical.

use std::sync::{Arc, OnceLock};

use bytes::{BufMut, Bytes, BytesMut};
use osss_core::{CallOptions, SharedObject, SoStats};
use osss_sim::{Context, Event, SimError, SimResult, SimTime};
use parking_lot::Mutex;

use crate::channel::{ChannelStats, TransferOutcome};
use crate::fault::mix;
use crate::rmi::{RmiService, RMI_HEADER_WORDS};
use crate::serialise::{crc32, Serialise, WORD_BYTES};

/// Words of reliability framing per message: payload length + CRC32.
pub const RELIABLE_TRAILER_WORDS: usize = 2;

const FRAME_TRAILER_BYTES: usize = RELIABLE_TRAILER_WORDS * WORD_BYTES;

/// Why a reliable invocation failed.
#[derive(Debug)]
#[non_exhaustive]
pub enum RmiError {
    /// No valid frame arrived before the deadline (retries disabled).
    Timeout,
    /// A frame arrived but failed its CRC check (retries disabled).
    CorruptFrame,
    /// The retry budget ran out before a clean exchange.
    RetriesExhausted {
        /// Transport failures seen by this invocation.
        attempts: u32,
        /// How many of them were deadline expiries.
        timeouts: u32,
        /// How many of them were CRC rejections.
        crc_failures: u32,
    },
    /// The simulation kernel failed underneath the protocol.
    Sim(SimError),
}

impl From<SimError> for RmiError {
    fn from(e: SimError) -> Self {
        RmiError::Sim(e)
    }
}

impl std::fmt::Display for RmiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RmiError::Timeout => write!(f, "no frame arrived before the deadline"),
            RmiError::CorruptFrame => write!(f, "frame rejected by CRC check"),
            RmiError::RetriesExhausted {
                attempts,
                timeouts,
                crc_failures,
            } => write!(
                f,
                "retry budget exhausted after {attempts} transport failures \
                 ({timeouts} timeouts, {crc_failures} CRC rejections)"
            ),
            RmiError::Sim(e) => write!(f, "simulation error: {e}"),
        }
    }
}

impl std::error::Error for RmiError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RmiError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

/// Appends the reliability trailer to `value`'s serialised payload:
/// `payload ++ len(u32) ++ crc32(u32)`, both big-endian.
pub fn encode_frame<A: Serialise + ?Sized>(value: &A) -> Bytes {
    let mut payload = BytesMut::with_capacity(value.serialised_bytes());
    value.write(&mut payload);
    let payload = payload.freeze();
    let crc = crc32(payload.as_slice());
    let mut out = BytesMut::with_capacity(payload.len() + FRAME_TRAILER_BYTES);
    out.put_slice(payload.as_slice());
    out.put_u32(payload.len() as u32);
    out.put_u32(crc);
    out.freeze()
}

/// Verifies a frame's trailer; returns the payload length in bytes.
///
/// # Errors
///
/// [`RmiError::CorruptFrame`] when the frame is shorter than its trailer,
/// the recorded length disagrees with the payload, or the CRC mismatches.
pub fn check_frame(frame: &[u8]) -> Result<usize, RmiError> {
    if frame.len() < FRAME_TRAILER_BYTES {
        return Err(RmiError::CorruptFrame);
    }
    let (payload, trailer) = frame.split_at(frame.len() - FRAME_TRAILER_BYTES);
    let len = u32::from_be_bytes(trailer[..4].try_into().expect("4 bytes")) as usize;
    let crc = u32::from_be_bytes(trailer[4..].try_into().expect("4 bytes"));
    if len != payload.len() || crc != crc32(payload) {
        return Err(RmiError::CorruptFrame);
    }
    Ok(len)
}

/// Deadline, retry budget, and backoff shape of a [`ReliableRmi`] client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// How long to wait for a frame before declaring it lost.
    pub timeout: SimTime,
    /// Transport failures tolerated per invocation before giving up.
    pub max_retries: u32,
    /// Backoff before the first re-send; doubles per failure.
    pub backoff_base: SimTime,
    /// Upper bound on the exponential backoff (before jitter).
    pub backoff_cap: SimTime,
    /// Seed of the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl RetryPolicy {
    /// A policy with the given deadline: 3 retries, backoff from a
    /// quarter of the deadline up to four deadlines, fixed jitter seed.
    pub fn new(timeout: SimTime) -> Self {
        RetryPolicy {
            timeout,
            max_retries: 3,
            backoff_base: timeout / 4,
            backoff_cap: SimTime::ps(timeout.as_ps().saturating_mul(4)),
            jitter_seed: 0x52E7_5259,
        }
    }

    /// Sets the retry budget (0 disables retries entirely).
    pub fn with_max_retries(mut self, max_retries: u32) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// Sets the backoff base and cap.
    pub fn with_backoff(mut self, base: SimTime, cap: SimTime) -> Self {
        self.backoff_base = base;
        self.backoff_cap = cap;
        self
    }

    /// Sets the jitter-stream seed.
    pub fn with_jitter_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }

    /// The backoff before re-send number `attempt` (1-based) of
    /// invocation `invoke_n`: exponential with cap, plus deterministic
    /// jitter of up to a quarter of the capped value.
    pub fn backoff(&self, invoke_n: u64, attempt: u32) -> SimTime {
        let shift = attempt.saturating_sub(1).min(32);
        let exp = self.backoff_base.as_ps().saturating_mul(1u64 << shift);
        let capped = exp.min(self.backoff_cap.as_ps());
        let jitter = if capped == 0 {
            0
        } else {
            mix(self.jitter_seed, invoke_n, attempt as u64) % (capped / 4 + 1)
        };
        SimTime::ps(capped.saturating_add(jitter))
    }
}

/// Protocol accounting of one [`ReliableRmi`] client handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RmiStats {
    /// Invocations started.
    pub invokes: u64,
    /// Invocations that returned a value.
    pub completed: u64,
    /// Completed invocations that needed at least one re-send.
    pub recovered: u64,
    /// Invocations abandoned past the retry budget.
    pub failed: u64,
    /// Frame re-sends.
    pub retries: u64,
    /// Deadline expiries observed.
    pub timeouts: u64,
    /// CRC rejections observed.
    pub crc_failures: u64,
    /// Words of useful traffic delivered (headers + payload).
    pub payload_words: u64,
    /// Words spent on trailers and on failed frames.
    pub overhead_words: u64,
    /// Simulated time spent in backoff waits.
    pub backoff_time: SimTime,
    /// Total simulated time inside invocations.
    pub invoke_time: SimTime,
}

impl RmiStats {
    /// Accumulates `other` into `self`, saturating at the numeric bounds.
    pub fn merge(&mut self, other: &RmiStats) {
        self.invokes = self.invokes.saturating_add(other.invokes);
        self.completed = self.completed.saturating_add(other.completed);
        self.recovered = self.recovered.saturating_add(other.recovered);
        self.failed = self.failed.saturating_add(other.failed);
        self.retries = self.retries.saturating_add(other.retries);
        self.timeouts = self.timeouts.saturating_add(other.timeouts);
        self.crc_failures = self.crc_failures.saturating_add(other.crc_failures);
        self.payload_words = self.payload_words.saturating_add(other.payload_words);
        self.overhead_words = self.overhead_words.saturating_add(other.overhead_words);
        self.backoff_time = self.backoff_time.saturating_add(other.backoff_time);
        self.invoke_time = self.invoke_time.saturating_add(other.invoke_time);
    }

    /// Exports the snapshot into `reg` under `<prefix>.` (one counter
    /// per field; the two time totals as `_ps` counters).
    pub fn export_to(&self, reg: &osss_sim::probe::MetricsRegistry, prefix: &str) {
        reg.add_counter(&format!("{prefix}.invokes"), self.invokes);
        reg.add_counter(&format!("{prefix}.completed"), self.completed);
        reg.add_counter(&format!("{prefix}.recovered"), self.recovered);
        reg.add_counter(&format!("{prefix}.failed"), self.failed);
        reg.add_counter(&format!("{prefix}.retries"), self.retries);
        reg.add_counter(&format!("{prefix}.timeouts"), self.timeouts);
        reg.add_counter(&format!("{prefix}.crc_failures"), self.crc_failures);
        reg.add_counter(&format!("{prefix}.payload_words"), self.payload_words);
        reg.add_counter(&format!("{prefix}.overhead_words"), self.overhead_words);
        reg.add_counter(&format!("{prefix}.backoff_ps"), self.backoff_time.as_ps());
        reg.add_counter(&format!("{prefix}.invoke_ps"), self.invoke_time.as_ps());
    }
}

impl std::ops::AddAssign<RmiStats> for RmiStats {
    fn add_assign(&mut self, rhs: RmiStats) {
        self.merge(&rhs);
    }
}

/// What the transport did to one frame, from the client's perspective.
#[derive(Clone, Copy)]
enum FrameFault {
    /// Nothing valid arrived before the deadline.
    Timeout,
    /// A frame arrived and was rejected by the CRC check.
    Crc,
}

/// Running tallies of one invocation's transport failures.
#[derive(Default)]
struct Failures {
    attempts: u32,
    timeouts: u32,
    crc_failures: u32,
}

struct ReliableShared {
    stats: Mutex<RmiStats>,
    /// Never notified: an honest deadline wait routed through
    /// [`Context::wait_event_timeout`] so the kernel's pinned
    /// exact-deadline tie-break governs the protocol.
    deadline: OnceLock<Event>,
}

/// A retrying, CRC-checked client handle around an [`RmiService`].
///
/// # Example
///
/// ```
/// use osss_sim::{Simulation, SimTime, Frequency};
/// use osss_core::{SharedObject, sched::Fcfs};
/// use osss_vta::{FaultConfig, FaultyChannel, P2pChannel, ReliableRmi, RetryPolicy, RmiService};
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), osss_sim::SimError> {
/// let mut sim = Simulation::new();
/// let so = SharedObject::new(&mut sim, "coproc", 0i64, Fcfs::new());
/// let link = Arc::new(P2pChannel::new(&mut sim, "link", Frequency::mhz(100)));
/// // Drop a third of all frames; the retry policy hides it.
/// let faulty = Arc::new(FaultyChannel::new(link, FaultConfig::none(11).with_drops(0.33)));
/// let policy = RetryPolicy::new(SimTime::us(50)).with_max_retries(8);
/// let rmi = ReliableRmi::new(RmiService::new(so, faulty), policy);
/// let stats = rmi.clone();
///
/// sim.spawn_process("client", move |ctx| {
///     for i in 0..10i64 {
///         let v = rmi
///             .try_invoke(ctx, &i, &0i64, |state, _| {
///                 *state += i;
///                 Ok(*state)
///             })
///             .expect("within retry budget");
///         assert!(v >= i);
///     }
///     Ok(())
/// });
/// sim.run()?.expect_all_finished()?;
/// assert_eq!(stats.stats().completed, 10);
/// # Ok(())
/// # }
/// ```
pub struct ReliableRmi<T> {
    rmi: RmiService<T>,
    policy: RetryPolicy,
    shared: Arc<ReliableShared>,
}

impl<T> Clone for ReliableRmi<T> {
    fn clone(&self) -> Self {
        ReliableRmi {
            rmi: self.rmi.clone(),
            policy: self.policy,
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> std::fmt::Debug for ReliableRmi<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReliableRmi")
            .field("rmi", &self.rmi)
            .field("policy", &self.policy)
            .finish()
    }
}

impl<T: Send + 'static> ReliableRmi<T> {
    /// Wraps `rmi` with `policy`.
    pub fn new(rmi: RmiService<T>, policy: RetryPolicy) -> Self {
        ReliableRmi {
            rmi,
            policy,
            shared: Arc::new(ReliableShared {
                stats: Mutex::new(RmiStats::default()),
                deadline: OnceLock::new(),
            }),
        }
    }

    /// The retry policy.
    pub fn policy(&self) -> RetryPolicy {
        self.policy
    }

    /// Snapshot of the protocol accounting.
    pub fn stats(&self) -> RmiStats {
        *self.shared.stats.lock()
    }

    /// The underlying shared object's statistics.
    pub fn object_stats(&self) -> SoStats {
        self.rmi.object_stats()
    }

    /// The transport's statistics.
    pub fn channel_stats(&self) -> ChannelStats {
        self.rmi.channel_stats()
    }

    /// Like [`RmiService::invoke`], but CRC-framed and retried per the
    /// policy. `f` executes exactly once even when transfers retry.
    ///
    /// # Errors
    ///
    /// A transport [`RmiError`] past the retry budget, or
    /// [`RmiError::Sim`] when the kernel is shutting down.
    pub fn try_invoke<A: Serialise + ?Sized, S: Serialise + ?Sized, R>(
        &self,
        ctx: &Context,
        args: &A,
        result_shape: &S,
        f: impl FnOnce(&mut T, &Context) -> SimResult<R>,
    ) -> Result<R, RmiError> {
        let priority = self.rmi.priority();
        self.invoke_inner(ctx, args, result_shape, |so, ctx| {
            so.call_with(ctx, CallOptions::new().priority(priority), f)
        })
    }

    /// Like [`RmiService::invoke_guarded`], but CRC-framed and retried
    /// per the policy. `f` executes exactly once even when transfers
    /// retry; the deadline covers transport only, never the object-side
    /// guard wait.
    ///
    /// # Errors
    ///
    /// A transport [`RmiError`] past the retry budget, or
    /// [`RmiError::Sim`] when the kernel is shutting down.
    pub fn try_invoke_guarded<A: Serialise + ?Sized, S: Serialise + ?Sized, R>(
        &self,
        ctx: &Context,
        args: &A,
        result_shape: &S,
        guard: impl Fn(&T) -> bool,
        f: impl FnOnce(&mut T, &Context) -> SimResult<R>,
    ) -> Result<R, RmiError> {
        self.invoke_inner(ctx, args, result_shape, |so, ctx| {
            so.call_guarded(ctx, guard, f)
        })
    }

    fn invoke_inner<A: Serialise + ?Sized, S: Serialise + ?Sized, R>(
        &self,
        ctx: &Context,
        args: &A,
        result_shape: &S,
        call: impl FnOnce(&SharedObject<T>, &Context) -> SimResult<R>,
    ) -> Result<R, RmiError> {
        let t0 = ctx.now();
        let invoke_n = {
            let mut st = self.shared.stats.lock();
            st.invokes = st.invokes.saturating_add(1);
            st.invokes
        };
        let mut failures = Failures::default();

        let req_frame = encode_frame(args);
        let req_words = RMI_HEADER_WORDS + args.serialised_words() + RELIABLE_TRAILER_WORDS;
        loop {
            match self.send_frame(ctx, &req_frame, req_words, true)? {
                None => break,
                Some(fault) => self.note_failure(ctx, invoke_n, fault, &mut failures)?,
            }
        }

        // The clean request crossed: the method body runs exactly once.
        let out = call(self.rmi.so(), ctx).map_err(RmiError::Sim)?;

        // The server caches the reply; a failed response only re-pays
        // the transfer (and the client's deadline), never re-runs `f`.
        let resp_frame = encode_frame(result_shape);
        let resp_words =
            RMI_HEADER_WORDS + result_shape.serialised_words() + RELIABLE_TRAILER_WORDS;
        loop {
            match self.send_frame(ctx, &resp_frame, resp_words, false)? {
                None => break,
                Some(fault) => self.note_failure(ctx, invoke_n, fault, &mut failures)?,
            }
        }

        let mut st = self.shared.stats.lock();
        st.completed = st.completed.saturating_add(1);
        if failures.attempts > 0 {
            st.recovered = st.recovered.saturating_add(1);
        }
        st.invoke_time = st
            .invoke_time
            .saturating_add(ctx.now().checked_sub(t0).unwrap_or(SimTime::ZERO));
        Ok(out)
    }

    /// Pushes one frame across the channel; `Ok(None)` means delivered.
    ///
    /// A faulted *request* costs the client its full deadline either way:
    /// a dropped frame never arrives, a corrupted one is discarded
    /// silently by the receiver's CRC check. A corrupted *response* is
    /// detected by the client's own CRC check the moment it lands; only
    /// a dropped response runs out the deadline.
    fn send_frame(
        &self,
        ctx: &Context,
        frame: &Bytes,
        words: usize,
        is_request: bool,
    ) -> Result<Option<FrameFault>, RmiError> {
        let outcome = self
            .rmi
            .channel()
            .transfer_outcome(ctx, words, self.rmi.priority())?;
        match outcome {
            TransferOutcome::Clean => {
                debug_assert!(check_frame(frame.as_slice()).is_ok());
                let mut st = self.shared.stats.lock();
                st.payload_words = st
                    .payload_words
                    .saturating_add((words - RELIABLE_TRAILER_WORDS) as u64);
                st.overhead_words = st
                    .overhead_words
                    .saturating_add(RELIABLE_TRAILER_WORDS as u64);
                Ok(None)
            }
            TransferOutcome::Corrupt { .. } => {
                // Model the receiver: any bit damage must fail the check.
                debug_assert!({
                    let mut damaged = frame.as_slice().to_vec();
                    damaged[0] ^= 0x80;
                    check_frame(&damaged).is_err()
                });
                {
                    let mut st = self.shared.stats.lock();
                    st.overhead_words = st.overhead_words.saturating_add(words as u64);
                }
                if is_request {
                    self.await_deadline(ctx)?;
                    Ok(Some(FrameFault::Timeout))
                } else {
                    Ok(Some(FrameFault::Crc))
                }
            }
            TransferOutcome::Dropped => {
                let mut st = self.shared.stats.lock();
                st.overhead_words = st.overhead_words.saturating_add(words as u64);
                drop(st);
                self.await_deadline(ctx)?;
                Ok(Some(FrameFault::Timeout))
            }
        }
    }

    /// Waits out the full deadline through the kernel's pinned
    /// [`Context::wait_event_timeout`] exact-deadline tie-break.
    fn await_deadline(&self, ctx: &Context) -> Result<(), RmiError> {
        let ev = self
            .shared
            .deadline
            .get_or_init(|| ctx.event("rmi.deadline"));
        let fired = ctx.wait_event_timeout(ev, self.policy.timeout)?;
        debug_assert!(!fired, "the deadline event is never notified");
        Ok(())
    }

    fn note_failure(
        &self,
        ctx: &Context,
        invoke_n: u64,
        fault: FrameFault,
        failures: &mut Failures,
    ) -> Result<(), RmiError> {
        failures.attempts += 1;
        {
            let mut st = self.shared.stats.lock();
            match fault {
                FrameFault::Timeout => {
                    st.timeouts = st.timeouts.saturating_add(1);
                    failures.timeouts += 1;
                }
                FrameFault::Crc => {
                    st.crc_failures = st.crc_failures.saturating_add(1);
                    failures.crc_failures += 1;
                }
            }
        }
        if failures.attempts > self.policy.max_retries {
            {
                let mut st = self.shared.stats.lock();
                st.failed = st.failed.saturating_add(1);
            }
            return Err(if self.policy.max_retries == 0 {
                match fault {
                    FrameFault::Timeout => RmiError::Timeout,
                    FrameFault::Crc => RmiError::CorruptFrame,
                }
            } else {
                RmiError::RetriesExhausted {
                    attempts: failures.attempts,
                    timeouts: failures.timeouts,
                    crc_failures: failures.crc_failures,
                }
            });
        }
        let wait = self.policy.backoff(invoke_n, failures.attempts);
        {
            let mut st = self.shared.stats.lock();
            st.retries = st.retries.saturating_add(1);
            st.backoff_time = st.backoff_time.saturating_add(wait);
        }
        if !wait.is_zero() {
            ctx.wait(wait)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::{BusConfig, OpbBus};
    use crate::channel::Channel;
    use crate::fault::{FaultConfig, FaultyChannel};
    use crate::p2p::P2pChannel;
    use osss_core::sched::Fcfs;
    use osss_sim::{Frequency, Simulation};

    #[test]
    fn frames_roundtrip_and_reject_damage() {
        let v: Vec<i32> = (0..50).collect();
        let frame = encode_frame(&v);
        assert_eq!(frame.len(), v.serialised_bytes() + FRAME_TRAILER_BYTES);
        assert_eq!(
            check_frame(frame.as_slice()).expect("clean"),
            v.serialised_bytes()
        );
        // Damage anywhere — payload, length, CRC — must be caught.
        for pos in [0, 17, frame.len() - 7, frame.len() - 1] {
            let mut bad = frame.as_slice().to_vec();
            bad[pos] ^= 0x01;
            assert!(check_frame(&bad).is_err(), "flip at {pos} undetected");
        }
        assert!(check_frame(&[0u8; 7]).is_err(), "short frame must fail");
        // The empty payload still carries a valid trailer.
        let empty = encode_frame(&());
        assert_eq!(check_frame(empty.as_slice()).expect("clean"), 0);
    }

    #[test]
    fn backoff_is_deterministic_exponential_and_capped() {
        let p = RetryPolicy::new(SimTime::us(100));
        assert_eq!(p.backoff(3, 1), p.backoff(3, 1));
        assert_ne!(p.backoff(3, 1), p.backoff(4, 1), "jitter varies per invoke");
        // Grows roughly exponentially until the cap.
        let b1 = p.backoff(1, 1);
        let b4 = p.backoff(1, 4);
        assert!(b4 > b1);
        let b_huge = p.backoff(1, 60);
        assert!(b_huge <= SimTime::ps(p.backoff_cap.as_ps() + p.backoff_cap.as_ps() / 4 + 1));
    }

    fn lossy_fixture(
        config: FaultConfig,
        policy: RetryPolicy,
        calls: i64,
    ) -> (Result<i64, String>, RmiStats, SimTime) {
        let mut sim = Simulation::new();
        let so = SharedObject::new(&mut sim, "so", 0i64, Fcfs::new());
        let link = Arc::new(P2pChannel::new(&mut sim, "link", Frequency::mhz(100)));
        let faulty = Arc::new(FaultyChannel::new(link, config));
        let rmi = ReliableRmi::new(RmiService::new(so, faulty), policy);
        let probe = rmi.clone();
        let out = Arc::new(Mutex::new(Ok(0i64)));
        let out2 = Arc::clone(&out);
        sim.spawn_process("client", move |ctx| {
            let mut acc = Ok(0i64);
            for i in 0..calls {
                match rmi.try_invoke(ctx, &i, &0i64, |state, _| {
                    *state += i;
                    Ok(*state)
                }) {
                    Ok(v) => acc = Ok(v),
                    Err(RmiError::Sim(e)) => return Err(e),
                    Err(e) => {
                        acc = Err(e.to_string());
                        break;
                    }
                }
            }
            *out2.lock() = acc;
            Ok(())
        });
        let end = sim.run().expect("run").end_time;
        let result = out.lock().clone();
        (result, probe.stats(), end)
    }

    #[test]
    fn fault_free_invoke_pins_the_trailer_overhead() {
        let policy = RetryPolicy::new(SimTime::us(50));
        let (result, stats, _) = lossy_fixture(FaultConfig::none(1), policy, 4);
        assert_eq!(result.expect("clean transport"), 6);
        assert_eq!(stats.invokes, 4);
        assert_eq!(stats.completed, 4);
        assert_eq!(stats.retries, 0);
        assert_eq!(stats.recovered, 0);
        // Exactly two trailers per invoke (request + response), pinned.
        assert_eq!(stats.overhead_words, 4 * 2 * RELIABLE_TRAILER_WORDS as u64);
    }

    #[test]
    fn drops_within_budget_are_recovered_and_deterministic() {
        let cfg = FaultConfig::none(21).with_drops(0.4);
        let policy = RetryPolicy::new(SimTime::us(30)).with_max_retries(16);
        let (r1, s1, t1) = lossy_fixture(cfg, policy, 12);
        let (r2, s2, t2) = lossy_fixture(cfg, policy, 12);
        assert_eq!(r1.clone().expect("recovered"), (0..12).sum::<i64>());
        assert_eq!(r1, r2);
        assert_eq!(s1, s2);
        assert_eq!(t1, t2);
        assert!(s1.retries > 0, "40% drops must trigger retries");
        assert_eq!(s1.completed, 12);
        assert_eq!(s1.failed, 0);
        assert!(s1.timeouts > 0);
        assert!(s1.backoff_time > SimTime::ZERO);
    }

    #[test]
    fn exhausted_budget_reports_the_failure_mix() {
        let cfg = FaultConfig::none(2).with_drops(1.0);
        let policy = RetryPolicy::new(SimTime::us(10)).with_max_retries(2);
        let (result, stats, _) = lossy_fixture(cfg, policy, 1);
        let msg = result.expect_err("nothing can cross a 100% lossy link");
        assert!(msg.contains("retry budget exhausted"), "got: {msg}");
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.completed, 0);
        assert_eq!(stats.timeouts, 3, "initial try + 2 retries");
    }

    #[test]
    fn retries_disabled_classifies_the_single_fault() {
        let drop_cfg = FaultConfig::none(5).with_drops(1.0);
        let policy = RetryPolicy::new(SimTime::us(10)).with_max_retries(0);
        let (result, _, _) = lossy_fixture(drop_cfg, policy, 1);
        let msg = result.expect_err("dropped");
        assert!(msg.contains("deadline"), "got: {msg}");

        let flip_cfg = FaultConfig::none(5).with_bit_flips(1.0);
        let (result, _, _) = lossy_fixture(flip_cfg, policy, 1);
        // A corrupt *request* also surfaces as a deadline expiry (the
        // server rejects it silently); only corrupt responses surface as
        // CRC errors, so accept either message here.
        let msg = result.expect_err("corrupt");
        assert!(
            msg.contains("deadline") || msg.contains("CRC"),
            "got: {msg}"
        );
    }

    #[test]
    fn method_body_runs_exactly_once_despite_response_retries() {
        // Only responses can fail CRC client-side; force heavy drops and
        // count how often the body executed.
        let mut sim = Simulation::new();
        let so = SharedObject::new(&mut sim, "so", 0u32, Fcfs::new());
        let bus = Arc::new(OpbBus::new(&mut sim, "opb", BusConfig::opb_100mhz()));
        let faulty = Arc::new(FaultyChannel::new(
            bus as Arc<dyn Channel>,
            FaultConfig::none(31).with_drops(0.5),
        ));
        let policy = RetryPolicy::new(SimTime::us(40)).with_max_retries(24);
        let rmi = ReliableRmi::new(RmiService::new(so.clone(), faulty), policy);
        sim.spawn_process("client", move |ctx| {
            for _ in 0..8 {
                rmi.try_invoke(ctx, &1u32, &(), |calls, _| {
                    *calls += 1;
                    Ok(())
                })
                .expect("within budget");
            }
            Ok(())
        });
        sim.run()
            .expect("run")
            .expect_all_finished()
            .expect("all done");
        assert_eq!(so.stats().calls, 8, "each invoke runs its body once");
    }
}
