//! The OSSS Channel abstraction: anything that can carry serialised words.

use osss_sim::{Context, SimResult, SimTime};

/// Aggregate statistics of one channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChannelStats {
    /// Completed transfers.
    pub transfers: u64,
    /// Total words moved.
    pub words: u64,
    /// Time the channel spent actively transferring.
    pub busy: SimTime,
    /// Time clients spent waiting for channel arbitration.
    pub arbitration_wait: SimTime,
}

impl ChannelStats {
    /// Accumulates `other` into `self`, saturating at the numeric bounds
    /// (a long soak simulation must peg its counters, not wrap or
    /// panic). Report paths use this to combine the snapshots of several
    /// channels — or of one channel across workers — into a single
    /// transport row.
    pub fn merge(&mut self, other: &ChannelStats) {
        self.transfers = self.transfers.saturating_add(other.transfers);
        self.words = self.words.saturating_add(other.words);
        self.busy = self.busy.saturating_add(other.busy);
        self.arbitration_wait = self.arbitration_wait.saturating_add(other.arbitration_wait);
    }

    /// Exports the snapshot into `reg` as `<prefix>.transfers`,
    /// `<prefix>.words`, `<prefix>.busy_ps` and `<prefix>.arb_wait_ps`.
    pub fn export_to(&self, reg: &osss_sim::probe::MetricsRegistry, prefix: &str) {
        reg.add_counter(&format!("{prefix}.transfers"), self.transfers);
        reg.add_counter(&format!("{prefix}.words"), self.words);
        reg.add_counter(&format!("{prefix}.busy_ps"), self.busy.as_ps());
        reg.add_counter(
            &format!("{prefix}.arb_wait_ps"),
            self.arbitration_wait.as_ps(),
        );
    }
}

impl std::ops::AddAssign<ChannelStats> for ChannelStats {
    fn add_assign(&mut self, rhs: ChannelStats) {
        self.merge(&rhs);
    }
}

/// What became of one transfer on an imperfect channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferOutcome {
    /// Every word arrived intact.
    Clean,
    /// The frame arrived, but some of its words were damaged in flight —
    /// a CRC-protected receiver will reject it.
    Corrupt {
        /// Number of damaged words.
        corrupt_words: u64,
    },
    /// The frame was lost entirely; the receiver never sees it.
    Dropped,
}

impl TransferOutcome {
    /// Whether the receiver can accept the frame as-is.
    pub fn is_clean(self) -> bool {
        matches!(self, TransferOutcome::Clean)
    }
}

/// A physical communication resource of the Virtual Target Architecture.
///
/// The RMI layer ([`crate::RmiService`]) is written against this trait,
/// which is the paper's key refinement property: swapping the shared OPB
/// bus for point-to-point links (models 6a → 6b, 7a → 7b) changes only
/// the channel object, never the behavioural code.
pub trait Channel: Send + Sync {
    /// Moves `words` 32-bit words across the channel on behalf of the
    /// calling process, blocking through arbitration and transfer time.
    ///
    /// `priority` is honoured by priority-arbitrated channels and ignored
    /// otherwise.
    ///
    /// # Errors
    ///
    /// [`osss_sim::SimError::Terminated`] when the simulation is shutting
    /// down.
    fn transfer(&self, ctx: &Context, words: usize, priority: u32) -> SimResult<()>;

    /// Like [`Channel::transfer`], but reports what became of the frame.
    ///
    /// Ideal channels deliver every frame intact, so the default
    /// implementation pays the same arbitration and transfer time as
    /// [`Channel::transfer`] and reports [`TransferOutcome::Clean`].
    /// Lossy decorators ([`crate::FaultyChannel`]) override it; note that
    /// time is consumed even for dropped frames — the words still
    /// occupied the wires.
    ///
    /// # Errors
    ///
    /// [`osss_sim::SimError::Terminated`] when the simulation is shutting
    /// down.
    fn transfer_outcome(
        &self,
        ctx: &Context,
        words: usize,
        priority: u32,
    ) -> SimResult<TransferOutcome> {
        self.transfer(ctx, words, priority)?;
        Ok(TransferOutcome::Clean)
    }

    /// The channel's name (for reports).
    fn name(&self) -> String;

    /// Statistics snapshot.
    fn stats(&self) -> ChannelStats;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_merge_saturates_at_the_u64_boundary() {
        let mut a = ChannelStats {
            transfers: u64::MAX - 2,
            words: u64::MAX,
            busy: SimTime::MAX,
            arbitration_wait: SimTime::ZERO,
        };
        let b = ChannelStats {
            transfers: 5,
            words: 1,
            busy: SimTime::ns(1),
            arbitration_wait: SimTime::MAX,
        };
        a += b;
        assert_eq!(a.transfers, u64::MAX);
        assert_eq!(a.words, u64::MAX);
        assert_eq!(a.busy, SimTime::MAX);
        assert_eq!(a.arbitration_wait, SimTime::MAX);
        // Merging a default is the identity.
        let before = a;
        a.merge(&ChannelStats::default());
        assert_eq!(a, before);
    }
}
