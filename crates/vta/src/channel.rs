//! The OSSS Channel abstraction: anything that can carry serialised words.

use osss_sim::{Context, SimResult, SimTime};

/// Aggregate statistics of one channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChannelStats {
    /// Completed transfers.
    pub transfers: u64,
    /// Total words moved.
    pub words: u64,
    /// Time the channel spent actively transferring.
    pub busy: SimTime,
    /// Time clients spent waiting for channel arbitration.
    pub arbitration_wait: SimTime,
}

/// A physical communication resource of the Virtual Target Architecture.
///
/// The RMI layer ([`crate::RmiService`]) is written against this trait,
/// which is the paper's key refinement property: swapping the shared OPB
/// bus for point-to-point links (models 6a → 6b, 7a → 7b) changes only
/// the channel object, never the behavioural code.
pub trait Channel: Send + Sync {
    /// Moves `words` 32-bit words across the channel on behalf of the
    /// calling process, blocking through arbitration and transfer time.
    ///
    /// `priority` is honoured by priority-arbitrated channels and ignored
    /// otherwise.
    ///
    /// # Errors
    ///
    /// [`osss_sim::SimError::Terminated`] when the simulation is shutting
    /// down.
    fn transfer(&self, ctx: &Context, words: usize, priority: u32) -> SimResult<()>;

    /// The channel's name (for reports).
    fn name(&self) -> String;

    /// Statistics snapshot.
    fn stats(&self) -> ChannelStats;
}
