//! The shared multi-master bus model (the case study's IBM OPB).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use osss_core::{sched::Fcfs, CallOptions, SharedObject};
use osss_sim::{Context, Frequency, SimResult, SimTime, Simulation};

use crate::channel::{Channel, ChannelStats};

/// Timing parameters of a shared bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusConfig {
    /// Bus clock.
    pub freq: Frequency,
    /// Arbitration + address phase, in cycles, paid once per transfer.
    pub arbitration_cycles: u64,
    /// Data cycles per 32-bit word (OPB-style single-beat transfers are
    /// not pipelined; 3 covers request/transfer/acknowledge).
    pub cycles_per_word: u64,
}

impl BusConfig {
    /// The case-study configuration: 100 MHz OPB, 1 arbitration cycle,
    /// 3 cycles per word.
    pub fn opb_100mhz() -> Self {
        BusConfig {
            freq: Frequency::mhz(100),
            arbitration_cycles: 1,
            cycles_per_word: 3,
        }
    }

    /// A PLB-class alternative: wider/pipelined transfers (1 cycle per
    /// word) at the cost of a longer arbitration phase — the "different
    /// bus protocols" axis the paper's exploration mentions.
    pub fn plb_100mhz() -> Self {
        BusConfig {
            freq: Frequency::mhz(100),
            arbitration_cycles: 5,
            cycles_per_word: 1,
        }
    }
}

/// A shared bus: all masters' transfers serialise through one arbiter,
/// so contention grows with the number of competing processors — the
/// effect that separates model 7a from 6a in Table 1.
///
/// # Example
///
/// ```
/// use osss_sim::{Simulation, SimTime};
/// use osss_vta::{BusConfig, Channel, OpbBus};
///
/// # fn main() -> Result<(), osss_sim::SimError> {
/// let mut sim = Simulation::new();
/// let bus = OpbBus::new(&mut sim, "opb", BusConfig::opb_100mhz());
/// for i in 0..2 {
///     let bus = bus.clone();
///     sim.spawn_process(&format!("master{i}"), move |ctx| {
///         bus.transfer(ctx, 100, 0) // 1 + 100×3 cycles each
///     });
/// }
/// // Two 301-cycle transfers serialise: 602 cycles at 10 ns.
/// assert_eq!(sim.run()?.end_time, SimTime::ns(6020));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct OpbBus {
    so: SharedObject<()>,
    config: BusConfig,
    words: Arc<AtomicU64>,
}

impl OpbBus {
    /// Creates a bus with FCFS arbitration.
    pub fn new(sim: &mut Simulation, name: &str, config: BusConfig) -> Self {
        OpbBus {
            so: SharedObject::new(sim, name, (), Fcfs::new()),
            config,
            words: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The configured timing parameters.
    pub fn config(&self) -> BusConfig {
        self.config
    }

    /// The duration of a `words`-word transfer excluding arbitration wait.
    pub fn transfer_time(&self, words: usize) -> SimTime {
        self.config
            .freq
            .cycles(self.config.arbitration_cycles + self.config.cycles_per_word * words as u64)
    }
}

impl Channel for OpbBus {
    fn transfer(&self, ctx: &Context, words: usize, priority: u32) -> SimResult<()> {
        let dur = self.transfer_time(words);
        self.words.fetch_add(words as u64, Ordering::Relaxed);
        self.so
            .call_with(ctx, CallOptions::new().priority(priority), |_, ctx| {
                ctx.wait(dur)
            })
    }

    fn name(&self) -> String {
        self.so.name().to_string()
    }

    fn stats(&self) -> ChannelStats {
        let s = self.so.stats();
        ChannelStats {
            transfers: s.calls,
            words: self.words.load(Ordering::Relaxed),
            busy: s.total_busy,
            arbitration_wait: s.total_arbitration_wait,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_formula() {
        let mut sim = Simulation::new();
        let bus = OpbBus::new(&mut sim, "opb", BusConfig::opb_100mhz());
        assert_eq!(bus.transfer_time(0), SimTime::ns(10)); // arbitration only
        assert_eq!(bus.transfer_time(1), SimTime::ns(40)); // 1 + 3 cycles
        assert_eq!(bus.transfer_time(1000), SimTime::ns(30_010));
        drop(sim);
    }

    #[test]
    fn plb_beats_opb_for_bulk_but_not_for_single_words() {
        let mut sim = Simulation::new();
        let opb = OpbBus::new(&mut sim, "opb", BusConfig::opb_100mhz());
        let plb = OpbBus::new(&mut sim, "plb", BusConfig::plb_100mhz());
        // Single word: OPB's short arbitration wins.
        assert!(opb.transfer_time(1) < plb.transfer_time(1));
        // Bulk tile transfer: the pipelined bus wins decisively.
        assert!(plb.transfer_time(32_768) < opb.transfer_time(32_768) / 2);
        drop(sim);
    }

    #[test]
    fn contention_accumulates_with_masters() {
        for masters in [1usize, 2, 4] {
            let mut sim = Simulation::new();
            let bus = OpbBus::new(&mut sim, "opb", BusConfig::opb_100mhz());
            for i in 0..masters {
                let bus = bus.clone();
                sim.spawn_process(&format!("m{i}"), move |ctx| bus.transfer(ctx, 50, 0));
            }
            let per_transfer = bus.transfer_time(50);
            let report = sim.run().expect("run");
            assert_eq!(report.end_time, per_transfer * masters as u64);
            let stats = bus.stats();
            assert_eq!(stats.transfers, masters as u64);
            assert_eq!(stats.words, 50 * masters as u64);
            assert_eq!(stats.busy, per_transfer * masters as u64);
        }
    }

    #[test]
    fn interleaved_transfers_preserve_order() {
        let mut sim = Simulation::new();
        let bus = OpbBus::new(&mut sim, "opb", BusConfig::opb_100mhz());
        let b1 = bus.clone();
        sim.spawn_process("early", move |ctx| {
            b1.transfer(ctx, 10, 0)?;
            b1.transfer(ctx, 10, 0)
        });
        let b2 = bus.clone();
        sim.spawn_process("late", move |ctx| {
            ctx.wait(SimTime::ns(5))?;
            b2.transfer(ctx, 10, 0)
        });
        let report = sim.run().expect("run");
        // Three 31-cycle transfers back to back.
        assert_eq!(report.end_time, SimTime::ns(930));
        assert!(bus.stats().arbitration_wait > SimTime::ZERO);
    }
}
