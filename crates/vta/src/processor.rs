//! Software processors: the N:1 target of software-task mapping.

use std::sync::Arc;

use parking_lot::Mutex;

use osss_core::{EetSink, TaskEnv};
use osss_sim::{Context, Event, Frequency, SimResult, SimTime, Simulation};

/// Utilisation statistics of one processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CpuStats {
    /// Number of EET blocks served.
    pub eet_blocks: u64,
    /// Total busy time.
    pub busy: SimTime,
    /// Total time tasks waited for the CPU.
    pub contention: SimTime,
}

impl CpuStats {
    /// Exports the snapshot into `reg` as `<prefix>.eet_blocks`,
    /// `<prefix>.busy_ps` and `<prefix>.contention_ps`.
    pub fn export_to(&self, reg: &osss_sim::probe::MetricsRegistry, prefix: &str) {
        reg.add_counter(&format!("{prefix}.eet_blocks"), self.eet_blocks);
        reg.add_counter(&format!("{prefix}.busy_ps"), self.busy.as_ps());
        reg.add_counter(&format!("{prefix}.contention_ps"), self.contention.as_ps());
    }
}

struct Inner {
    name: String,
    freq: Frequency,
    busy: Mutex<bool>,
    released: Event,
    timeslice: Option<SimTime>,
    stats: Mutex<CpuStats>,
}

/// A processor of the Virtual Target Architecture. Mapping a software task
/// onto it (via [`SoftwareProcessor::env`], the paper's `add_sw_task`)
/// re-binds the task's EET blocks from free-running time to **exclusive
/// processor time**, so co-mapped tasks serialise and a 4-way-parallel
/// Application Model only speeds up if it is given four processors.
///
/// With a timeslice configured, long EET blocks are consumed in
/// round-robin slices instead of non-preemptively.
#[derive(Clone)]
pub struct SoftwareProcessor {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for SoftwareProcessor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SoftwareProcessor")
            .field("name", &self.inner.name)
            .field("freq", &self.inner.freq)
            .finish()
    }
}

impl SoftwareProcessor {
    /// Creates a processor clocked at `freq`.
    pub fn new(sim: &mut Simulation, name: &str, freq: Frequency) -> Self {
        SoftwareProcessor {
            inner: Arc::new(Inner {
                name: name.to_string(),
                freq,
                busy: Mutex::new(false),
                released: sim.event(&format!("cpu:{name}.released")),
                timeslice: None,
                stats: Mutex::new(CpuStats::default()),
            }),
        }
    }

    /// Returns a copy of this processor that consumes EETs in round-robin
    /// slices of `quantum` (preemptive scheduling model).
    ///
    /// # Panics
    ///
    /// Panics if `quantum` is zero.
    pub fn with_timeslice(&self, quantum: SimTime) -> Self {
        assert!(!quantum.is_zero(), "timeslice must be non-zero");
        SoftwareProcessor {
            inner: Arc::new(Inner {
                name: self.inner.name.clone(),
                freq: self.inner.freq,
                busy: Mutex::new(false),
                released: self.inner.released.clone(),
                timeslice: Some(quantum),
                stats: Mutex::new(CpuStats::default()),
            }),
        }
    }

    /// The processor name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// The clock frequency.
    pub fn freq(&self) -> Frequency {
        self.inner.freq
    }

    /// Utilisation statistics snapshot.
    pub fn stats(&self) -> CpuStats {
        *self.inner.stats.lock()
    }

    /// Maps a software task onto this processor: returns the execution
    /// environment whose EET blocks draw exclusive CPU time (the paper's
    /// `add_sw_task`).
    pub fn env(&self, task_name: &str) -> TaskEnv {
        TaskEnv::bound_to(task_name, Arc::new(self.clone()))
    }

    fn acquire(&self, ctx: &Context) -> SimResult<()> {
        loop {
            {
                let mut busy = self.inner.busy.lock();
                if !*busy {
                    *busy = true;
                    return Ok(());
                }
            }
            ctx.wait_event(&self.inner.released)?;
        }
    }

    fn release(&self, ctx: &Context) {
        *self.inner.busy.lock() = false;
        ctx.notify(&self.inner.released);
    }
}

impl EetSink for SoftwareProcessor {
    fn consume(&self, ctx: &Context, t: SimTime) -> SimResult<()> {
        let start = ctx.now();
        let mut remaining = t;
        while !remaining.is_zero() {
            self.acquire(ctx)?;
            let slice = match self.inner.timeslice {
                Some(q) if q < remaining => q,
                _ => remaining,
            };
            let r = ctx.wait(slice);
            self.release(ctx);
            r?;
            remaining = remaining.checked_sub(slice).unwrap_or(SimTime::ZERO);
            if !remaining.is_zero() {
                // Yield one delta so tasks woken by the release get to
                // claim the CPU before we re-acquire (round-robin).
                ctx.wait(SimTime::ZERO)?;
            }
        }
        let elapsed = ctx.now() - start;
        let mut stats = self.inner.stats.lock();
        stats.eet_blocks += 1;
        stats.busy += t;
        stats.contention += elapsed.checked_sub(t).unwrap_or(SimTime::ZERO);
        Ok(())
    }

    fn resource_name(&self) -> String {
        format!("cpu:{}@{}", self.inner.name, self.inner.freq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_task_runs_unimpeded() {
        let mut sim = Simulation::new();
        let cpu = SoftwareProcessor::new(&mut sim, "cpu0", Frequency::mhz(100));
        let env = cpu.env("t");
        sim.spawn_process("t", move |ctx| env.eet(ctx, SimTime::ms(5), || ()));
        assert_eq!(sim.run().expect("run").end_time, SimTime::ms(5));
        assert_eq!(cpu.stats().eet_blocks, 1);
        assert_eq!(cpu.stats().busy, SimTime::ms(5));
        assert_eq!(cpu.stats().contention, SimTime::ZERO);
    }

    #[test]
    fn co_mapped_tasks_serialise() {
        let mut sim = Simulation::new();
        let cpu = SoftwareProcessor::new(&mut sim, "cpu0", Frequency::mhz(100));
        for i in 0..4 {
            let env = cpu.env(&format!("t{i}"));
            sim.spawn_process(&format!("t{i}"), move |ctx| {
                env.eet(ctx, SimTime::ms(3), || ())
            });
        }
        // Four 3 ms EETs on one CPU: 12 ms, with 0+3+6+9 ms contention.
        assert_eq!(sim.run().expect("run").end_time, SimTime::ms(12));
        assert_eq!(cpu.stats().contention, SimTime::ms(18));
    }

    #[test]
    fn tasks_on_different_processors_run_in_parallel() {
        let mut sim = Simulation::new();
        for i in 0..4 {
            let cpu = SoftwareProcessor::new(&mut sim, &format!("cpu{i}"), Frequency::mhz(100));
            let env = cpu.env("t");
            sim.spawn_process(&format!("t{i}"), move |ctx| {
                env.eet(ctx, SimTime::ms(3), || ())
            });
        }
        assert_eq!(sim.run().expect("run").end_time, SimTime::ms(3));
    }

    #[test]
    fn timeslicing_interleaves_long_blocks() {
        use std::sync::Mutex as StdMutex;
        let finish_order = Arc::new(StdMutex::new(Vec::new()));
        let mut sim = Simulation::new();
        let base = SoftwareProcessor::new(&mut sim, "cpu0", Frequency::mhz(100));
        let cpu = base.with_timeslice(SimTime::ms(1));
        // A long task and a short task: with slicing, the short task
        // finishes long before the long one, despite starting second.
        let env_long = cpu.env("long");
        let order1 = Arc::clone(&finish_order);
        sim.spawn_process("long", move |ctx| {
            env_long.eet(ctx, SimTime::ms(10), || ())?;
            order1.lock().unwrap().push("long");
            Ok(())
        });
        let env_short = cpu.env("short");
        let order2 = Arc::clone(&finish_order);
        sim.spawn_process("short", move |ctx| {
            env_short.eet(ctx, SimTime::ms(2), || ())?;
            order2.lock().unwrap().push("short");
            Ok(())
        });
        let report = sim.run().expect("run");
        assert_eq!(*finish_order.lock().unwrap(), vec!["short", "long"]);
        assert_eq!(report.end_time, SimTime::ms(12));
    }

    #[test]
    fn env_reports_resource() {
        let mut sim = Simulation::new();
        let cpu = SoftwareProcessor::new(&mut sim, "ppc", Frequency::mhz(100));
        let env = cpu.env("decoder");
        assert_eq!(env.name(), "decoder");
        assert!(env.resource_name().contains("ppc"));
        assert!(env.resource_name().contains("100 MHz"));
    }
}
