//! Data serialisation: cutting user-defined data into bus words.
//!
//! OSSS transfers method arguments and results over channels in
//! 32-bit-word chunks; the serialisation layer defines how many words a
//! value occupies (for cycle-accurate transfer costs) and how it is laid
//! out (so VTA models move real bytes, not hand-waved sizes).

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Bytes per channel word.
pub const WORD_BYTES: usize = 4;

/// A value that can be cut into channel words.
///
/// # Example
///
/// ```
/// use osss_vta::{Serialise, Deserialise};
///
/// let tile: Vec<i32> = (0..100).collect();
/// let words = tile.serialised_words();
/// assert_eq!(words, 101); // length prefix + 100 payload words
/// let bytes = tile.to_bytes();
/// let back = Vec::<i32>::from_bytes(&mut bytes.clone()).unwrap();
/// assert_eq!(back, tile);
/// ```
pub trait Serialise {
    /// Serialised size in bytes.
    fn serialised_bytes(&self) -> usize;

    /// Appends the serialised representation.
    fn write(&self, out: &mut BytesMut);

    /// Serialised size in whole channel words (rounded up).
    fn serialised_words(&self) -> usize {
        self.serialised_bytes().div_ceil(WORD_BYTES)
    }

    /// Convenience: serialises into a fresh buffer.
    fn to_bytes(&self) -> Bytes {
        let mut out = BytesMut::with_capacity(self.serialised_bytes());
        self.write(&mut out);
        out.freeze()
    }
}

/// The inverse of [`Serialise`].
pub trait Deserialise: Sized {
    /// Reads a value back; `None` if the buffer is too short.
    fn from_bytes(buf: &mut Bytes) -> Option<Self>;
}

macro_rules! impl_scalar {
    ($t:ty, $put:ident, $get:ident, $bytes:expr) => {
        impl Serialise for $t {
            fn serialised_bytes(&self) -> usize {
                $bytes
            }
            fn write(&self, out: &mut BytesMut) {
                out.$put(*self);
            }
        }
        impl Deserialise for $t {
            fn from_bytes(buf: &mut Bytes) -> Option<Self> {
                if buf.remaining() < $bytes {
                    return None;
                }
                Some(buf.$get())
            }
        }
    };
}

impl_scalar!(u8, put_u8, get_u8, 1);
impl_scalar!(u16, put_u16, get_u16, 2);
impl_scalar!(u32, put_u32, get_u32, 4);
impl_scalar!(u64, put_u64, get_u64, 8);
impl_scalar!(i32, put_i32, get_i32, 4);
impl_scalar!(i64, put_i64, get_i64, 8);
impl_scalar!(f64, put_f64, get_f64, 8);

impl Serialise for bool {
    fn serialised_bytes(&self) -> usize {
        1
    }
    fn write(&self, out: &mut BytesMut) {
        out.put_u8(*self as u8);
    }
}

impl Deserialise for bool {
    fn from_bytes(buf: &mut Bytes) -> Option<Self> {
        if buf.remaining() < 1 {
            return None;
        }
        Some(buf.get_u8() != 0)
    }
}

impl Serialise for () {
    fn serialised_bytes(&self) -> usize {
        0
    }
    fn write(&self, _out: &mut BytesMut) {}
}

impl Deserialise for () {
    fn from_bytes(_buf: &mut Bytes) -> Option<Self> {
        Some(())
    }
}

impl<T: Serialise> Serialise for Vec<T> {
    fn serialised_bytes(&self) -> usize {
        4 + self.iter().map(Serialise::serialised_bytes).sum::<usize>()
    }
    fn write(&self, out: &mut BytesMut) {
        out.put_u32(self.len() as u32);
        for v in self {
            v.write(out);
        }
    }
}

impl<T: Deserialise> Deserialise for Vec<T> {
    fn from_bytes(buf: &mut Bytes) -> Option<Self> {
        if buf.remaining() < 4 {
            return None;
        }
        let n = buf.get_u32() as usize;
        let mut out = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            out.push(T::from_bytes(buf)?);
        }
        Some(out)
    }
}

impl<A: Serialise, B: Serialise> Serialise for (A, B) {
    fn serialised_bytes(&self) -> usize {
        self.0.serialised_bytes() + self.1.serialised_bytes()
    }
    fn write(&self, out: &mut BytesMut) {
        self.0.write(out);
        self.1.write(out);
    }
}

impl<A: Deserialise, B: Deserialise> Deserialise for (A, B) {
    fn from_bytes(buf: &mut Bytes) -> Option<Self> {
        Some((A::from_bytes(buf)?, B::from_bytes(buf)?))
    }
}

impl<T: Serialise, const N: usize> Serialise for [T; N] {
    fn serialised_bytes(&self) -> usize {
        self.iter().map(Serialise::serialised_bytes).sum()
    }
    fn write(&self, out: &mut BytesMut) {
        for v in self {
            v.write(out);
        }
    }
}

/// CRC-32 (IEEE 802.3) over `data` — the reliable-RMI frame trailer
/// checksum. Hoisted to [`osss_sim::checksum`] so the native network
/// decode protocol shares the exact implementation; re-exported here
/// so existing `serialise::crc32` users are unaffected.
pub use osss_sim::checksum::crc32;

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Serialise + Deserialise + PartialEq + std::fmt::Debug>(v: T) {
        let mut b = v.to_bytes();
        assert_eq!(b.len(), v.serialised_bytes());
        let back = T::from_bytes(&mut b).expect("deserialise");
        assert_eq!(back, v);
    }

    #[test]
    fn scalars_roundtrip() {
        roundtrip(0xAAu8);
        roundtrip(0xBEEFu16);
        roundtrip(0xDEAD_BEEFu32);
        roundtrip(u64::MAX);
        roundtrip(-12345i32);
        roundtrip(i64::MIN);
        roundtrip(3.25f64);
        roundtrip(true);
        roundtrip(false);
    }

    #[test]
    fn vectors_roundtrip_with_length_prefix() {
        let v: Vec<i32> = (-50..50).collect();
        assert_eq!(v.serialised_bytes(), 4 + 100 * 4);
        assert_eq!(v.serialised_words(), 101);
        roundtrip(v);
        roundtrip(Vec::<u8>::new());
    }

    #[test]
    fn tuples_and_nesting() {
        roundtrip((7u32, vec![1i32, -2, 3]));
        roundtrip((vec![vec![1u8, 2], vec![3]], 9i64));
    }

    #[test]
    fn word_rounding() {
        assert_eq!(1u8.serialised_words(), 1);
        assert_eq!(0xFFFFu16.serialised_words(), 1);
        assert_eq!((1u32, 2u8).serialised_words(), 2); // 5 bytes -> 2 words
        assert_eq!(().serialised_words(), 0);
    }

    #[test]
    fn truncated_buffer_returns_none() {
        let v = vec![1i32, 2, 3];
        let bytes = v.to_bytes();
        let mut cut = bytes.slice(0..bytes.len() - 2);
        assert!(Vec::<i32>::from_bytes(&mut cut).is_none());
    }

    #[test]
    fn fixed_arrays_serialise_without_prefix() {
        let a: [u32; 4] = [1, 2, 3, 4];
        assert_eq!(a.serialised_bytes(), 16);
        assert_eq!(a.serialised_words(), 4);
    }

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_detects_any_single_bit_flip() {
        let data: Vec<u8> = (0u32..64).map(|i| (i * 37 % 251) as u8).collect();
        let good = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut bad = data.clone();
                bad[byte] ^= 1 << bit;
                assert_ne!(crc32(&bad), good, "flip at {byte}.{bit} undetected");
            }
        }
    }
}
