//! # osss-vta — the OSSS Virtual Target Architecture layer
//!
//! The second OSSS modelling layer: the Application Model's logical
//! components are mapped onto architecture resources, adding
//! cycle-accurate communication and memory timing while leaving the
//! behaviour code untouched (the paper's *seamless refinement*).
//!
//! * [`SoftwareProcessor`] — software tasks map N:1 onto processors; an
//!   EET block then consumes **exclusive CPU time** instead of free time.
//! * [`OpbBus`] / [`P2pChannel`] — OSSS Channels: a shared multi-master
//!   bus (the case study's IBM OPB) and dedicated point-to-point links,
//!   both behind the [`Channel`] trait.
//! * [`RmiService`] — the Remote Method Invocation layer that carries the
//!   Application Layer's method calls over any channel: serialise the
//!   arguments, transfer, execute under the shared object's arbitration,
//!   transfer the results back.
//! * [`Serialise`] — cuts user data (tiles!) into bus words.
//! * [`FaultyChannel`] / [`ReliableRmi`] — the robustness layer: a
//!   seeded, deterministic transport fault injector and a CRC-framed,
//!   retrying RMI protocol that survives it (timeout, bounded retries,
//!   exponential backoff).
//! * [`XilinxBlockRam`] / [`DdrController`] — explicit memories; inserting
//!   them into a shared object is what inflates the VTA IDWT times in
//!   Table 1.
//! * [`PlatformDesc`] — a declarative description of the assembled
//!   platform, consumed by `fossy`'s MHS/MSS emitters.
//!
//! ## Example: one EET, two mappings
//!
//! ```
//! use osss_sim::{Simulation, SimTime, Frequency};
//! use osss_core::TaskEnv;
//! use osss_vta::SoftwareProcessor;
//!
//! # fn main() -> Result<(), osss_sim::SimError> {
//! let mut sim = Simulation::new();
//! let cpu = SoftwareProcessor::new(&mut sim, "ppc405", Frequency::mhz(100));
//! // Two tasks on ONE processor: their EETs serialise.
//! for i in 0..2 {
//!     let env = cpu.env(&format!("task{i}"));
//!     sim.spawn_process(&format!("task{i}"), move |ctx| {
//!         env.eet(ctx, SimTime::ms(10), || ())
//!     });
//! }
//! assert_eq!(sim.run()?.end_time, SimTime::ms(20));
//! # Ok(())
//! # }
//! ```

mod bus;
mod channel;
mod fault;
mod mem;
mod p2p;
mod platform;
mod processor;
mod reliable;
mod rmi;
mod serialise;

pub use bus::{BusConfig, OpbBus};
pub use channel::{Channel, ChannelStats, TransferOutcome};
pub use fault::{FaultConfig, FaultStats, FaultyChannel};
pub use mem::{DdrController, MemStats, XilinxBlockRam};
pub use p2p::P2pChannel;
pub use platform::{BusDesc, MemoryDesc, P2pDesc, PlatformDesc, ProcessorDesc};
pub use processor::{CpuStats, SoftwareProcessor};
pub use reliable::{
    check_frame, encode_frame, ReliableRmi, RetryPolicy, RmiError, RmiStats, RELIABLE_TRAILER_WORDS,
};
pub use rmi::RmiService;
pub use serialise::{crc32, Deserialise, Serialise, WORD_BYTES};
