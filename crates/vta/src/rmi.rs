//! The Remote Method Invocation layer: Application-Layer method calls
//! carried over physical channels.
//!
//! RMI decouples *what* a method call does from *how* its data moves: the
//! request (method id + serialised arguments) crosses the channel, the
//! method body executes under the shared object's own arbitration, and
//! the serialised results cross back. Swapping the channel object —
//! shared bus ↔ point-to-point — re-maps the communication without
//! touching a single line of behavioural code.

use std::sync::Arc;

use osss_core::{CallOptions, SharedObject, SoStats};
use osss_sim::{Context, SimResult};

use crate::channel::{Channel, ChannelStats};
use crate::serialise::Serialise;

/// Words of protocol framing per RMI message (method id + length).
pub const RMI_HEADER_WORDS: usize = 2;

/// A shared object reachable through a physical channel.
///
/// # Example
///
/// ```
/// use osss_sim::{Simulation, SimTime, Frequency};
/// use osss_core::{SharedObject, sched::Fcfs};
/// use osss_vta::{OpbBus, BusConfig, RmiService};
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), osss_sim::SimError> {
/// let mut sim = Simulation::new();
/// let so = SharedObject::new(&mut sim, "coproc", 0u64, Fcfs::new());
/// let bus = Arc::new(OpbBus::new(&mut sim, "opb", BusConfig::opb_100mhz()));
/// let svc = RmiService::new(so, bus);
///
/// sim.spawn_process("client", move |ctx| {
///     let args: Vec<i32> = (0..100).collect();
///     // Request transfer + method body + response transfer, all blocking.
///     let sum = svc.invoke(ctx, &args, &0i64, |state, ctx| {
///         *state += 1;
///         ctx.wait(SimTime::us(5))?; // compute time in the co-processor
///         Ok(args.iter().map(|&v| v as i64).sum::<i64>())
///     })?;
///     assert_eq!(sum, 4950);
///     Ok(())
/// });
/// sim.run()?.expect_all_finished()?;
/// # Ok(())
/// # }
/// ```
pub struct RmiService<T> {
    so: SharedObject<T>,
    channel: Arc<dyn Channel>,
    priority: u32,
}

impl<T> Clone for RmiService<T> {
    fn clone(&self) -> Self {
        RmiService {
            so: self.so.clone(),
            channel: Arc::clone(&self.channel),
            priority: self.priority,
        }
    }
}

impl<T> std::fmt::Debug for RmiService<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RmiService")
            .field("object", &self.so.name())
            .field("channel", &self.channel.name())
            .finish()
    }
}

impl<T: Send + 'static> RmiService<T> {
    /// Binds `so` to `channel`.
    pub fn new(so: SharedObject<T>, channel: Arc<dyn Channel>) -> Self {
        RmiService {
            so,
            channel,
            priority: 0,
        }
    }

    /// Sets the channel/arbitration priority used by this client handle.
    pub fn with_priority(mut self, priority: u32) -> Self {
        self.priority = priority;
        self
    }

    pub(crate) fn so(&self) -> &SharedObject<T> {
        &self.so
    }

    pub(crate) fn channel(&self) -> &Arc<dyn Channel> {
        &self.channel
    }

    pub(crate) fn priority(&self) -> u32 {
        self.priority
    }

    /// The underlying shared object's statistics.
    pub fn object_stats(&self) -> SoStats {
        self.so.stats()
    }

    /// The transport's statistics.
    pub fn channel_stats(&self) -> ChannelStats {
        self.channel.stats()
    }

    /// A blocking remote method call: transfers `args` to the object,
    /// executes `f` under the object's arbitration, transfers a result
    /// the size of `result_shape` back, and returns `f`'s value.
    ///
    /// `result_shape` only determines the response transfer size — RMI
    /// costs depend on the declared interface, not the dynamic value.
    ///
    /// # Errors
    ///
    /// Propagates kernel termination and errors from `f`.
    pub fn invoke<A: Serialise + ?Sized, S: Serialise + ?Sized, R>(
        &self,
        ctx: &Context,
        args: &A,
        result_shape: &S,
        f: impl FnOnce(&mut T, &Context) -> SimResult<R>,
    ) -> SimResult<R> {
        let req_words = RMI_HEADER_WORDS + args.serialised_words();
        self.channel.transfer(ctx, req_words, self.priority)?;
        let out = self
            .so
            .call_with(ctx, CallOptions::new().priority(self.priority), f)?;
        let resp_words = RMI_HEADER_WORDS + result_shape.serialised_words();
        self.channel.transfer(ctx, resp_words, self.priority)?;
        Ok(out)
    }

    /// A guarded remote call: the request is transferred, then the method
    /// waits (object-side) until `guard` holds. See
    /// [`SharedObject::call_guarded`].
    ///
    /// # Errors
    ///
    /// Propagates kernel termination and errors from `f`.
    pub fn invoke_guarded<A: Serialise + ?Sized, S: Serialise + ?Sized, R>(
        &self,
        ctx: &Context,
        args: &A,
        result_shape: &S,
        guard: impl Fn(&T) -> bool,
        f: impl FnOnce(&mut T, &Context) -> SimResult<R>,
    ) -> SimResult<R> {
        let req_words = RMI_HEADER_WORDS + args.serialised_words();
        self.channel.transfer(ctx, req_words, self.priority)?;
        let out = self.so.call_guarded(ctx, guard, f)?;
        let resp_words = RMI_HEADER_WORDS + result_shape.serialised_words();
        self.channel.transfer(ctx, resp_words, self.priority)?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::{BusConfig, OpbBus};
    use crate::p2p::P2pChannel;
    use osss_core::sched::Fcfs;
    use osss_sim::{Frequency, SimTime, Simulation};

    #[test]
    fn invoke_adds_transfer_cost_on_both_sides() {
        let mut sim = Simulation::new();
        let so = SharedObject::new(&mut sim, "so", (), Fcfs::new());
        let bus = Arc::new(OpbBus::new(&mut sim, "opb", BusConfig::opb_100mhz()));
        let svc = RmiService::new(so, Arc::clone(&bus) as Arc<dyn Channel>);
        let req = bus.transfer_time(RMI_HEADER_WORDS + 101);
        let resp = bus.transfer_time(RMI_HEADER_WORDS + 1);
        sim.spawn_process("client", move |ctx| {
            let args: Vec<i32> = (0..100).collect();
            svc.invoke(ctx, &args, &0i32, |_, ctx| ctx.wait(SimTime::us(7)))?;
            Ok(())
        });
        let report = sim.run().expect("run");
        assert_eq!(report.end_time, req + SimTime::us(7) + resp);
    }

    #[test]
    fn bus_vs_p2p_mapping_changes_only_timing() {
        // The same behavioural closure, two different channels: the P2P
        // mapping must be strictly faster, the results identical.
        let run = |p2p: bool| -> (SimTime, i64) {
            let mut sim = Simulation::new();
            let so = SharedObject::new(&mut sim, "so", (), Fcfs::new());
            let ch: Arc<dyn Channel> = if p2p {
                Arc::new(P2pChannel::new(&mut sim, "link", Frequency::mhz(100)))
            } else {
                Arc::new(OpbBus::new(&mut sim, "opb", BusConfig::opb_100mhz()))
            };
            let svc = RmiService::new(so, ch);
            let out = Arc::new(parking_lot::Mutex::new(0i64));
            let out2 = Arc::clone(&out);
            sim.spawn_process("client", move |ctx| {
                let args: Vec<i32> = (0..1000).collect();
                let r = svc.invoke(ctx, &args, &0i64, |_, _| {
                    Ok(args.iter().map(|&v| v as i64).sum::<i64>())
                })?;
                *out2.lock() = r;
                Ok(())
            });
            let t = sim.run().expect("run").end_time;
            let v = *out.lock();
            (t, v)
        };
        let (t_bus, v_bus) = run(false);
        let (t_p2p, v_p2p) = run(true);
        assert_eq!(v_bus, v_p2p);
        assert_eq!(v_bus, 499_500);
        assert!(t_p2p < t_bus, "P2P {t_p2p} should beat bus {t_bus}");
    }

    #[test]
    fn contention_on_shared_bus_grows_with_clients() {
        let total_for = |clients: usize| -> SimTime {
            let mut sim = Simulation::new();
            let so = SharedObject::new(&mut sim, "so", (), Fcfs::new());
            let bus: Arc<dyn Channel> =
                Arc::new(OpbBus::new(&mut sim, "opb", BusConfig::opb_100mhz()));
            for i in 0..clients {
                let svc = RmiService::new(so.clone(), Arc::clone(&bus));
                sim.spawn_process(&format!("c{i}"), move |ctx| {
                    let args: Vec<i32> = vec![0; 500];
                    svc.invoke(ctx, &args, &(), |_, _| Ok(()))?;
                    Ok(())
                });
            }
            sim.run().expect("run").end_time
        };
        let t1 = total_for(1);
        let t4 = total_for(4);
        assert!(t4 >= t1 * 3, "4 clients should be ~4x one: {t1} vs {t4}");
    }

    #[test]
    fn guarded_invoke_synchronises_producer_consumer() {
        let mut sim = Simulation::new();
        let so = SharedObject::new(&mut sim, "queue", Vec::<i32>::new(), Fcfs::new());
        let link: Arc<dyn Channel> =
            Arc::new(P2pChannel::new(&mut sim, "link", Frequency::mhz(100)));
        let svc_c = RmiService::new(so.clone(), Arc::clone(&link));
        sim.spawn_process("consumer", move |ctx| {
            let v =
                svc_c.invoke_guarded(ctx, &(), &0i32, |q| !q.is_empty(), |q, _| Ok(q.remove(0)))?;
            assert_eq!(v, 5);
            Ok(())
        });
        let svc_p = RmiService::new(so, link);
        sim.spawn_process("producer", move |ctx| {
            ctx.wait(SimTime::us(3))?;
            svc_p.invoke(ctx, &5i32, &(), |q, _| {
                q.push(5);
                Ok(())
            })?;
            Ok(())
        });
        sim.run()
            .expect("run")
            .expect_all_finished()
            .expect("all done");
    }
}
