//! Property-based tests of the VTA layer: serialisation round-trips,
//! channel-cost monotonicity and processor-time conservation.

use proptest::prelude::*;
use std::sync::Arc;

use osss_core::{sched::Fcfs, SharedObject};
use osss_sim::{Frequency, SimTime, Simulation};
use osss_vta::{
    BusConfig, Channel, ChannelStats, Deserialise, FaultConfig, FaultyChannel, OpbBus, P2pChannel,
    ReliableRmi, RetryPolicy, RmiService, Serialise, SoftwareProcessor, RELIABLE_TRAILER_WORDS,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Serialise/deserialise is the identity on nested containers.
    #[test]
    fn serialisation_roundtrip(
        v in proptest::collection::vec(
            (any::<i32>(), proptest::collection::vec(any::<u16>(), 0..20)),
            0..20,
        ),
    ) {
        let mut bytes = v.to_bytes();
        prop_assert_eq!(bytes.len(), v.serialised_bytes());
        let back = Vec::<(i32, Vec<u16>)>::from_bytes(&mut bytes).unwrap();
        prop_assert_eq!(back, v);
    }

    /// Word counts round byte counts up, never down, and never by more
    /// than three bytes.
    #[test]
    fn word_rounding_bounds(v in proptest::collection::vec(any::<u8>(), 0..100)) {
        let words = v.serialised_words();
        let bytes = v.serialised_bytes();
        prop_assert!(words * 4 >= bytes);
        prop_assert!(words * 4 < bytes + 4);
    }

    /// Bus transfer time is affine in the word count and monotone in all
    /// configuration parameters.
    #[test]
    fn bus_time_is_affine_and_monotone(
        words_a in 0usize..10_000,
        words_b in 0usize..10_000,
        cycles_per_word in 1u64..8,
        arb in 0u64..8,
    ) {
        let mut sim = Simulation::new();
        let cfg = BusConfig {
            freq: Frequency::mhz(100),
            arbitration_cycles: arb,
            cycles_per_word,
        };
        let bus = OpbBus::new(&mut sim, "b", cfg);
        let t = |w: usize| bus.transfer_time(w);
        // Affine: t(a) + t(b) == t(a + b) + t(0).
        prop_assert_eq!(t(words_a) + t(words_b), t(words_a + words_b) + t(0));
        // Monotone in words.
        prop_assert!(t(words_a + 1) >= t(words_a));
        drop(sim);
    }

    /// P2P beats the case-study bus for any non-trivial payload.
    #[test]
    fn p2p_never_slower_than_opb(words in 1usize..100_000) {
        let mut sim = Simulation::new();
        let bus = OpbBus::new(&mut sim, "b", BusConfig::opb_100mhz());
        let link = P2pChannel::new(&mut sim, "l", Frequency::mhz(100));
        prop_assert!(link.transfer_time(words) <= bus.transfer_time(words));
        drop(sim);
    }

    /// CPU time conservation: N tasks × one EET each on one processor
    /// always finish at exactly the sum of their durations, in any order
    /// of arrival.
    #[test]
    fn processor_serialises_exactly(
        durations in proptest::collection::vec(1u64..500, 1..8),
        offsets in proptest::collection::vec(0u64..50, 8),
    ) {
        let mut sim = Simulation::new();
        let cpu = SoftwareProcessor::new(&mut sim, "cpu", Frequency::mhz(100));
        let max_offset = durations
            .iter()
            .enumerate()
            .map(|(i, _)| offsets[i])
            .max()
            .unwrap_or(0);
        for (i, &d) in durations.iter().enumerate() {
            let env = cpu.env(&format!("t{i}"));
            let off = offsets[i];
            sim.spawn_process(&format!("t{i}"), move |ctx| {
                ctx.wait(SimTime::us(off))?;
                env.eet(ctx, SimTime::us(d), || ())
            });
        }
        let report = sim.run().unwrap();
        let total: u64 = durations.iter().sum();
        // All work serialised on one CPU: end >= total busy time, and the
        // CPU was never idle once started if all arrive at once.
        prop_assert!(report.end_time >= SimTime::us(total));
        prop_assert!(report.end_time <= SimTime::us(total + max_offset));
        prop_assert_eq!(cpu.stats().busy, SimTime::us(total));
    }

    /// Channel busy-time accounting matches the sum of transfer times,
    /// independent of contention.
    #[test]
    fn bus_busy_accounting(
        transfers in proptest::collection::vec(1usize..500, 1..6),
    ) {
        let mut sim = Simulation::new();
        let bus = Arc::new(OpbBus::new(&mut sim, "b", BusConfig::opb_100mhz()));
        let expected: SimTime = transfers.iter().map(|&w| bus.transfer_time(w)).sum();
        for (i, &w) in transfers.iter().enumerate() {
            let bus = Arc::clone(&bus);
            sim.spawn_process(&format!("m{i}"), move |ctx| bus.transfer(ctx, w, 0));
        }
        let report = sim.run().unwrap();
        prop_assert_eq!(bus.stats().busy, expected);
        prop_assert_eq!(report.end_time, expected, "fully serialised bus");
    }

    /// Zero-fault transparency: a `FaultyChannel` with all rates 0 is
    /// indistinguishable from the bare channel — bit-identical
    /// `ChannelStats` and end-times for any traffic pattern and seed.
    #[test]
    fn zero_fault_decorator_is_transparent(
        transfers in proptest::collection::vec(1usize..500, 1..6),
        seed in any::<u64>(),
    ) {
        let run = |wrap: bool| -> (SimTime, ChannelStats) {
            let mut sim = Simulation::new();
            let bus = Arc::new(OpbBus::new(&mut sim, "b", BusConfig::opb_100mhz()));
            let ch: Arc<dyn Channel> = if wrap {
                Arc::new(FaultyChannel::new(
                    Arc::clone(&bus) as Arc<dyn Channel>,
                    FaultConfig::none(seed),
                ))
            } else {
                Arc::clone(&bus) as Arc<dyn Channel>
            };
            for (i, &w) in transfers.iter().enumerate() {
                let ch = Arc::clone(&ch);
                sim.spawn_process(&format!("m{i}"), move |ctx| ch.transfer(ctx, w, 0));
            }
            let report = sim.run().unwrap();
            (report.end_time, bus.stats())
        };
        let (t_bare, s_bare) = run(false);
        let (t_faulty, s_faulty) = run(true);
        prop_assert_eq!(t_bare, t_faulty);
        prop_assert_eq!(s_bare, s_faulty);
    }

    /// Reliable RMI over a zero-fault channel completes every call with
    /// zero retries and exactly one CRC trailer of overhead per frame
    /// (two per invocation) — the pinned protocol cost.
    #[test]
    fn reliable_rmi_overhead_is_pinned_at_zero_fault(
        payloads in proptest::collection::vec(0usize..200, 1..5),
        seed in any::<u64>(),
    ) {
        let mut sim = Simulation::new();
        let so = SharedObject::new(&mut sim, "so", 0u64, Fcfs::new());
        let bus = Arc::new(OpbBus::new(&mut sim, "b", BusConfig::opb_100mhz()));
        let faulty = Arc::new(FaultyChannel::new(
            bus as Arc<dyn Channel>,
            FaultConfig::none(seed),
        ));
        let rmi = ReliableRmi::new(
            RmiService::new(so, faulty),
            RetryPolicy::new(SimTime::us(100)),
        );
        let probe = rmi.clone();
        let n = payloads.len() as u64;
        sim.spawn_process("client", move |ctx| {
            for len in payloads {
                let args: Vec<u32> = vec![7; len];
                rmi.try_invoke(ctx, &args, &0u64, |state, _| {
                    *state += 1;
                    Ok(*state)
                })
                .expect("zero-fault transport never errors");
            }
            Ok(())
        });
        sim.run().unwrap().expect_all_finished().unwrap();
        let stats = probe.stats();
        prop_assert_eq!(stats.invokes, n);
        prop_assert_eq!(stats.completed, n);
        prop_assert_eq!(stats.retries, 0);
        prop_assert_eq!(stats.timeouts, 0);
        prop_assert_eq!(stats.crc_failures, 0);
        prop_assert_eq!(stats.failed, 0);
        prop_assert_eq!(stats.overhead_words, n * 2 * RELIABLE_TRAILER_WORDS as u64);
    }
}
