//! Property-based tests of shared-object invariants: mutual exclusion,
//! conservation, policy-independent completeness and FCFS ordering.

use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use osss_core::{
    sched::{Fcfs, RoundRobin, StaticPriority},
    CallOptions, SharedObject,
};
use osss_sim::{SimTime, Simulation};

/// Runs `clients` processes, each making `calls` method calls of
/// `hold_ns` on one shared object under the given arbiter; returns
/// (total completed calls, peak concurrency, end time, busy time).
fn exercise(
    arbiter_sel: usize,
    clients: usize,
    calls: usize,
    hold_ns: u64,
    stagger_ns: u64,
) -> (u64, usize, SimTime, SimTime) {
    let mut sim = Simulation::new();
    let so: SharedObject<u64> = match arbiter_sel {
        0 => SharedObject::new(&mut sim, "so", 0, Fcfs::new()),
        1 => SharedObject::new(&mut sim, "so", 0, RoundRobin::new()),
        _ => SharedObject::new(&mut sim, "so", 0, StaticPriority::new()),
    };
    let inside = Arc::new(AtomicUsize::new(0));
    let peak = Arc::new(AtomicUsize::new(0));
    for k in 0..clients {
        let so = so.clone();
        let inside = Arc::clone(&inside);
        let peak = Arc::clone(&peak);
        sim.spawn_process(&format!("c{k}"), move |ctx| {
            ctx.wait(SimTime::ns(stagger_ns * k as u64))?;
            for _ in 0..calls {
                so.call_with(ctx, CallOptions::new().priority(k as u32), |v, ctx| {
                    let now = inside.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    *v += 1;
                    let r = ctx.wait(SimTime::ns(hold_ns));
                    inside.fetch_sub(1, Ordering::SeqCst);
                    r
                })?;
            }
            Ok(())
        });
    }
    let report = sim.run().expect("run");
    report.expect_all_finished().expect("all clients finish");
    let total = so.inspect(|v| *v);
    let stats = so.stats();
    (
        total,
        peak.load(Ordering::SeqCst),
        report.end_time,
        stats.total_busy,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Under every arbitration policy: mutual exclusion holds, no call is
    /// lost, and the object's busy time is exactly calls × hold time.
    #[test]
    fn mutual_exclusion_and_conservation(
        arbiter in 0usize..3,
        clients in 1usize..6,
        calls in 1usize..6,
        hold in 1u64..200,
        stagger in 0u64..100,
    ) {
        let (total, peak, end, busy) = exercise(arbiter, clients, calls, hold, stagger);
        prop_assert_eq!(total as usize, clients * calls, "no lost calls");
        prop_assert!(peak <= 1, "mutual exclusion violated: peak {}", peak);
        let expected_busy = SimTime::ns(hold) * (clients * calls) as u64;
        prop_assert_eq!(busy, expected_busy);
        prop_assert!(end >= expected_busy, "end time below serial bound");
    }

    /// FCFS grants in strict arrival order when arrivals are distinct.
    #[test]
    fn fcfs_orders_by_arrival(offsets in proptest::collection::vec(0u64..1000, 2..7)) {
        // Make arrivals distinct by construction.
        let mut distinct = offsets.clone();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assume!(distinct.len() >= 2);

        let order = Arc::new(Mutex::new(Vec::new()));
        let mut sim = Simulation::new();
        let so = SharedObject::new(&mut sim, "so", (), Fcfs::new());
        // An occupier keeps the object busy until all contenders arrived.
        let span = *distinct.last().unwrap() + 1;
        let so_occ = so.clone();
        sim.spawn_process("occupier", move |ctx| {
            so_occ.call(ctx, |_, ctx| ctx.wait(SimTime::ns(span)))
        });
        for (i, &off) in distinct.iter().enumerate() {
            let so = so.clone();
            let order = Arc::clone(&order);
            sim.spawn_process(&format!("c{i}"), move |ctx| {
                ctx.wait(SimTime::ns(off))?;
                so.call(ctx, |_, ctx| {
                    order.lock().unwrap().push(off);
                    ctx.wait(SimTime::ns(10))
                })
            });
        }
        sim.run().unwrap().expect_all_finished().unwrap();
        let got = order.lock().unwrap().clone();
        let mut want = distinct.clone();
        want.sort_unstable();
        prop_assert_eq!(got, want, "FCFS must follow arrival order");
    }

    /// Static priority: when everyone queues behind an occupier, grants
    /// are ordered by descending priority.
    #[test]
    fn static_priority_orders_by_priority(
        prios in proptest::collection::vec(0u32..100, 2..7),
    ) {
        let mut distinct = prios.clone();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assume!(distinct.len() >= 2);

        let order = Arc::new(Mutex::new(Vec::new()));
        let mut sim = Simulation::new();
        let so = SharedObject::new(&mut sim, "so", (), StaticPriority::new());
        let so_occ = so.clone();
        sim.spawn_process("occupier", move |ctx| {
            so_occ.call(ctx, |_, ctx| ctx.wait(SimTime::us(1)))
        });
        for (i, &p) in distinct.iter().enumerate() {
            let so = so.clone();
            let order = Arc::clone(&order);
            sim.spawn_process(&format!("c{i}"), move |ctx| {
                ctx.wait(SimTime::ns(10))?; // all queue while occupied
                so.call_with(ctx, CallOptions::new().priority(p), |_, ctx| {
                    order.lock().unwrap().push(p);
                    ctx.wait(SimTime::ns(10))
                })
            });
        }
        sim.run().unwrap().expect_all_finished().unwrap();
        let got = order.lock().unwrap().clone();
        let mut want = distinct.clone();
        want.sort_unstable_by(|a, b| b.cmp(a));
        prop_assert_eq!(got, want, "grants must be priority-descending");
    }
}
