//! Active structural blocks: software tasks and hardware modules.
//!
//! OSSS distinguishes two kinds of active components: a *Software Task*
//! holds exactly one process; a *(hardware) Module* may hold several
//! concurrent processes. Both communicate through shared objects.

use osss_sim::{Context, ProcId, SimResult, Simulation};

use crate::eet::TaskEnv;

/// A software task: exactly one process plus its execution environment.
///
/// On the Application Layer the environment is unconstrained time; when the
/// task is later mapped onto a VTA software processor, the *same* body runs
/// with a processor-bound [`TaskEnv`] (see `osss-vta`).
///
/// # Example
///
/// ```
/// use osss_sim::{Simulation, SimTime};
/// use osss_core::SwTask;
///
/// # fn main() -> Result<(), osss_sim::SimError> {
/// let mut sim = Simulation::new();
/// SwTask::spawn(&mut sim, "arith_decoder", |env, ctx| {
///     env.eet(ctx, SimTime::ms(180), || { /* decode a tile */ })
/// });
/// assert_eq!(sim.run()?.end_time, SimTime::ms(180));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SwTask {
    name: String,
    pid: ProcId,
}

impl SwTask {
    /// Spawns a software task on the Application Layer (unbound time).
    pub fn spawn<F>(sim: &mut Simulation, name: &str, body: F) -> SwTask
    where
        F: FnOnce(&TaskEnv, &Context) -> SimResult<()> + Send + 'static,
    {
        Self::spawn_with_env(sim, name, TaskEnv::application_layer(name), body)
    }

    /// Spawns a software task with an explicit environment (used by the VTA
    /// layer to bind the task to a software processor).
    pub fn spawn_with_env<F>(sim: &mut Simulation, name: &str, env: TaskEnv, body: F) -> SwTask
    where
        F: FnOnce(&TaskEnv, &Context) -> SimResult<()> + Send + 'static,
    {
        let pid = sim.spawn_process(name, move |ctx| body(&env, ctx));
        SwTask {
            name: name.to_string(),
            pid,
        }
    }

    /// The task name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The id of the task's process (its client identity at shared objects).
    pub fn pid(&self) -> ProcId {
        self.pid
    }
}

/// A hardware module: a named group of concurrent processes.
///
/// # Example
///
/// ```
/// use osss_sim::{Simulation, SimTime};
/// use osss_core::Module;
///
/// # fn main() -> Result<(), osss_sim::SimError> {
/// let mut sim = Simulation::new();
/// Module::build(&mut sim, "idwt")
///     .process("control", |ctx| ctx.wait(SimTime::ns(10)))
///     .process("datapath", |ctx| ctx.wait(SimTime::ns(20)));
/// assert_eq!(sim.run()?.end_time, SimTime::ns(20));
/// # Ok(())
/// # }
/// ```
pub struct Module<'sim> {
    sim: &'sim mut Simulation,
    name: String,
    processes: Vec<(String, ProcId)>,
}

impl<'sim> Module<'sim> {
    /// Starts building a module.
    pub fn build(sim: &'sim mut Simulation, name: &str) -> Self {
        Module {
            sim,
            name: name.to_string(),
            processes: Vec::new(),
        }
    }

    /// Adds a concurrent process named `module.process` to the module.
    pub fn process<F>(mut self, name: &str, body: F) -> Self
    where
        F: FnOnce(&Context) -> SimResult<()> + Send + 'static,
    {
        let full = format!("{}.{}", self.name, name);
        let pid = self.sim.spawn_process(&full, body);
        self.processes.push((full, pid));
        self
    }

    /// The module name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Names and ids of the processes added so far.
    pub fn processes(&self) -> &[(String, ProcId)] {
        &self.processes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osss_sim::SimTime;

    #[test]
    fn sw_task_runs_body_with_env() {
        let mut sim = Simulation::new();
        let task = SwTask::spawn(&mut sim, "t", |env, ctx| {
            assert_eq!(env.name(), "t");
            env.eet(ctx, SimTime::us(7), || ())
        });
        assert_eq!(task.name(), "t");
        assert_eq!(sim.run().expect("run").end_time, SimTime::us(7));
    }

    #[test]
    fn module_processes_run_concurrently() {
        let mut sim = Simulation::new();
        let m = Module::build(&mut sim, "idwt")
            .process("a", |ctx| ctx.wait(SimTime::ns(30)))
            .process("b", |ctx| ctx.wait(SimTime::ns(50)));
        assert_eq!(m.processes().len(), 2);
        assert_eq!(m.processes()[0].0, "idwt.a");
        drop(m);
        // Concurrent, not sequential: 50 ns, not 80 ns.
        assert_eq!(sim.run().expect("run").end_time, SimTime::ns(50));
    }

    #[test]
    fn task_pid_is_usable_as_client_identity() {
        let mut sim = Simulation::new();
        let t1 = SwTask::spawn(&mut sim, "a", |_, _| Ok(()));
        let t2 = SwTask::spawn(&mut sim, "b", |_, _| Ok(()));
        assert_ne!(t1.pid(), t2.pid());
        sim.run().expect("run");
    }
}
