//! Shared-object arbitration policies.
//!
//! OSSS shared objects resolve concurrent access through an exchangeable
//! scheduler. The library ships the three policies the OSSS class library
//! documents: first-come-first-served, round-robin and static priority.

use osss_sim::ProcId;

/// One pending access request, as seen by an arbiter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Client (process) that issued the call.
    pub client: ProcId,
    /// Priority supplied through [`crate::CallOptions`]; larger wins for
    /// priority-based arbiters.
    pub priority: u32,
    /// Monotonic arrival sequence number (smaller arrived earlier).
    pub seq: u64,
}

/// An arbitration policy: given the pending requests, picks which one is
/// granted next.
///
/// Implementations must return an index into `pending`, or `None` if
/// `pending` is empty. They may keep internal state (e.g. round-robin
/// position).
pub trait Arbiter: Send {
    /// Chooses the next request to grant.
    fn pick(&mut self, pending: &[Request]) -> Option<usize>;

    /// Human-readable policy name (used in statistics dumps).
    fn policy_name(&self) -> &'static str;
}

impl Arbiter for Box<dyn Arbiter> {
    fn pick(&mut self, pending: &[Request]) -> Option<usize> {
        self.as_mut().pick(pending)
    }

    fn policy_name(&self) -> &'static str {
        self.as_ref().policy_name()
    }
}

/// First-come-first-served: grants requests strictly in arrival order.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fcfs;

impl Fcfs {
    /// Creates the policy.
    pub fn new() -> Self {
        Fcfs
    }
}

impl Arbiter for Fcfs {
    fn pick(&mut self, pending: &[Request]) -> Option<usize> {
        pending
            .iter()
            .enumerate()
            .min_by_key(|(_, r)| r.seq)
            .map(|(i, _)| i)
    }

    fn policy_name(&self) -> &'static str {
        "fcfs"
    }
}

/// Round-robin over client identities: after serving client *c*, the next
/// grant prefers the pending client with the smallest identity greater than
/// *c* (wrapping).
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobin {
    last: Option<ProcId>,
}

impl RoundRobin {
    /// Creates the policy.
    pub fn new() -> Self {
        RoundRobin::default()
    }
}

impl Arbiter for RoundRobin {
    fn pick(&mut self, pending: &[Request]) -> Option<usize> {
        if pending.is_empty() {
            return None;
        }
        let pivot = self.last;
        // Order: clients after the pivot first (wrapping), ties by arrival.
        let chosen = pending
            .iter()
            .enumerate()
            .min_by_key(|(_, r)| {
                let after_pivot = match pivot {
                    Some(p) => r.client <= p,
                    None => false,
                };
                (after_pivot, r.client, r.seq)
            })
            .map(|(i, _)| i);
        if let Some(i) = chosen {
            self.last = Some(pending[i].client);
        }
        chosen
    }

    fn policy_name(&self) -> &'static str {
        "round_robin"
    }
}

/// Static priority: the highest [`Request::priority`] wins; ties broken by
/// arrival order.
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticPriority;

impl StaticPriority {
    /// Creates the policy.
    pub fn new() -> Self {
        StaticPriority
    }
}

impl Arbiter for StaticPriority {
    fn pick(&mut self, pending: &[Request]) -> Option<usize> {
        pending
            .iter()
            .enumerate()
            .min_by_key(|(_, r)| (std::cmp::Reverse(r.priority), r.seq))
            .map(|(i, _)| i)
    }

    fn policy_name(&self) -> &'static str {
        "static_priority"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(client: usize, priority: u32, seq: u64) -> Request {
        Request {
            client: fake_pid(client),
            priority,
            seq,
        }
    }

    fn fake_pid(n: usize) -> ProcId {
        ProcId::from_raw(n)
    }

    #[test]
    fn fcfs_is_arrival_order() {
        let mut a = Fcfs::new();
        let pending = [req(2, 0, 5), req(0, 9, 3), req(1, 0, 7)];
        assert_eq!(a.pick(&pending), Some(1)); // seq 3 first, priority ignored
        assert_eq!(a.policy_name(), "fcfs");
        assert_eq!(a.pick(&[]), None);
    }

    #[test]
    fn static_priority_prefers_high_priority() {
        let mut a = StaticPriority::new();
        let pending = [req(0, 1, 1), req(1, 5, 2), req(2, 5, 3)];
        // Priority 5 wins; among equals, earlier arrival.
        assert_eq!(a.pick(&pending), Some(1));
    }

    #[test]
    fn round_robin_rotates() {
        let mut a = RoundRobin::new();
        let p0 = fake_pid(0);
        let p1 = fake_pid(1);
        let p2 = fake_pid(2);
        let mk = |c: ProcId, seq| Request {
            client: c,
            priority: 0,
            seq,
        };
        // First grant: lowest client id.
        let pending = [mk(p1, 1), mk(p0, 2), mk(p2, 3)];
        assert_eq!(a.pick(&pending), Some(1)); // p0
                                               // p0 just served: now p1 preferred over p0 even if p0 re-requests.
        let pending = [mk(p0, 4), mk(p1, 1), mk(p2, 3)];
        assert_eq!(a.pick(&pending), Some(1)); // p1
        let pending = [mk(p0, 4), mk(p2, 3)];
        assert_eq!(a.pick(&pending), Some(1)); // p2
                                               // Wrap around.
        let pending = [mk(p0, 4)];
        assert_eq!(a.pick(&pending), Some(0));
    }
}
