//! OSSS Shared Objects: passive, arbitrated, method-based communication.

use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

use osss_sim::{Context, Event, ProcId, SimResult, SimTime, Simulation};

use crate::sched::{Arbiter, Request};

/// Per-call options for [`SharedObject::call_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CallOptions {
    /// Arbitration priority (meaningful for priority arbiters; larger wins).
    pub priority: u32,
}

impl CallOptions {
    /// Default options (priority 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the arbitration priority.
    pub fn priority(mut self, priority: u32) -> Self {
        self.priority = priority;
        self
    }
}

/// Usage statistics of one shared object, used by the case study to
/// quantify arbitration overhead (model version 5 vs 4 in Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SoStats {
    /// Number of completed method calls (guard probes excluded).
    pub calls: u64,
    /// Total time callers spent waiting for the grant.
    pub total_arbitration_wait: SimTime,
    /// Total time the object was busy executing method bodies.
    pub total_busy: SimTime,
    /// Largest number of simultaneously pending requests observed.
    pub max_pending: usize,
}

impl SoStats {
    /// Accumulates `other` into `self`: counters and times saturate at
    /// their numeric bounds (a long soak simulation must peg its
    /// counters, not wrap or panic) and `max_pending` takes the maximum.
    /// Report paths use this to combine per-object or per-worker
    /// snapshots into one row.
    pub fn merge(&mut self, other: &SoStats) {
        self.calls = self.calls.saturating_add(other.calls);
        self.total_arbitration_wait = self
            .total_arbitration_wait
            .saturating_add(other.total_arbitration_wait);
        self.total_busy = self.total_busy.saturating_add(other.total_busy);
        self.max_pending = self.max_pending.max(other.max_pending);
    }
}

impl std::ops::AddAssign<SoStats> for SoStats {
    fn add_assign(&mut self, rhs: SoStats) {
        self.merge(&rhs);
    }
}

struct State {
    busy: Option<ProcId>,
    pending: Vec<Request>,
    next_seq: u64,
    /// Standing grant decision; the chosen client claims it on wake-up.
    granted: Option<(ProcId, u64)>,
    stats: SoStats,
}

struct Inner<T> {
    name: String,
    data: Mutex<T>,
    state: Mutex<State>,
    arbiter: Mutex<Box<dyn Arbiter>>,
    /// Notified on every release: pending clients re-run arbitration.
    released: Event,
    /// Notified only when a *method body* completed (guard probes that found
    /// their condition false do not fire it) — guard re-evaluation trigger.
    changed: Event,
}

/// An OSSS Shared Object: a passive object that active components (modules
/// and software tasks) access through **blocking method calls**, with
/// concurrent access resolved by a pluggable [`Arbiter`].
///
/// The object is *passive*: it never initiates execution; all computation
/// happens on the caller's process while the object is held, which is
/// exactly how a synthesised shared object behaves (the method body becomes
/// part of the co-processor's FSM and the caller blocks on completion).
///
/// Handles are cheap to clone and share between processes.
///
/// See the [crate-level example](crate) for basic use; guarded calls:
///
/// ```
/// use osss_sim::{Simulation, SimTime};
/// use osss_core::{SharedObject, sched::Fcfs};
///
/// # fn main() -> Result<(), osss_sim::SimError> {
/// let mut sim = Simulation::new();
/// let buf = SharedObject::new(&mut sim, "buffer", Vec::<u32>::new(), Fcfs::new());
///
/// let producer_buf = buf.clone();
/// sim.spawn_process("producer", move |ctx| {
///     ctx.wait(SimTime::ns(30))?;
///     producer_buf.call(ctx, |b, _| Ok(b.push(7)))
/// });
/// let consumer_buf = buf.clone();
/// sim.spawn_process("consumer", move |ctx| {
///     // Guarded method: blocks until the guard holds, then executes.
///     let v = consumer_buf.call_guarded(ctx, |b| !b.is_empty(), |b, _| Ok(b.remove(0)))?;
///     assert_eq!(v, 7);
///     Ok(())
/// });
/// sim.run()?.expect_all_finished()?;
/// # Ok(())
/// # }
/// ```
pub struct SharedObject<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for SharedObject<T> {
    fn clone(&self) -> Self {
        SharedObject {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> fmt::Debug for SharedObject<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.inner.state.lock();
        f.debug_struct("SharedObject")
            .field("name", &self.inner.name)
            .field("busy", &st.busy)
            .field("pending", &st.pending.len())
            .finish()
    }
}

impl<T> SharedObject<T> {
    /// The object's name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// A snapshot of the usage statistics.
    pub fn stats(&self) -> SoStats {
        self.inner.state.lock().stats
    }

    /// Zero-time inspection of the wrapped data from *outside* the
    /// simulation (test assertions, result extraction after `run`).
    /// Simulated accesses must go through [`Self::call`].
    pub fn inspect<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        f(&self.inner.data.lock())
    }
}

impl<T: Send + 'static> SharedObject<T> {
    /// Creates a shared object wrapping `data`, arbitrated by `arbiter`.
    pub fn new(sim: &mut Simulation, name: &str, data: T, arbiter: impl Arbiter + 'static) -> Self {
        SharedObject {
            inner: Arc::new(Inner {
                name: name.to_string(),
                data: Mutex::new(data),
                state: Mutex::new(State {
                    busy: None,
                    pending: Vec::new(),
                    next_seq: 0,
                    granted: None,
                    stats: SoStats::default(),
                }),
                arbiter: Mutex::new(Box::new(arbiter)),
                released: sim.event(&format!("so:{name}.released")),
                changed: sim.event(&format!("so:{name}.changed")),
            }),
        }
    }

    /// Blocking method call with default options. See [`Self::call_with`].
    ///
    /// # Errors
    ///
    /// Propagates kernel termination and errors from `f`.
    pub fn call<R>(
        &self,
        ctx: &Context,
        f: impl FnOnce(&mut T, &Context) -> SimResult<R>,
    ) -> SimResult<R> {
        self.call_with(ctx, CallOptions::new(), f)
    }

    /// Blocking method call: waits for the arbiter's grant, runs `f` on the
    /// wrapped data (the body may consume simulated time through
    /// `ctx.wait`), releases the object and returns `f`'s result.
    ///
    /// # Errors
    ///
    /// Propagates kernel termination and errors from `f`.
    pub fn call_with<R>(
        &self,
        ctx: &Context,
        opts: CallOptions,
        f: impl FnOnce(&mut T, &Context) -> SimResult<R>,
    ) -> SimResult<R> {
        self.call_inner(ctx, opts, |data, ctx| f(data, ctx).map(|r| (true, r)))
    }

    /// Blocking guarded method call: waits until both the object grants
    /// access **and** `guard` holds for its current state.
    ///
    /// While the guard is false the object stays available to other
    /// clients (OSSS guarded-method semantics); the caller re-evaluates the
    /// guard whenever some method body completes.
    ///
    /// # Errors
    ///
    /// Propagates kernel termination and errors from `f`.
    pub fn call_guarded<R>(
        &self,
        ctx: &Context,
        guard: impl Fn(&T) -> bool,
        f: impl FnOnce(&mut T, &Context) -> SimResult<R>,
    ) -> SimResult<R> {
        self.call_guarded_with(ctx, CallOptions::new(), guard, f)
    }

    /// [`Self::call_guarded`] with explicit [`CallOptions`].
    ///
    /// # Errors
    ///
    /// Propagates kernel termination and errors from `f`.
    pub fn call_guarded_with<R>(
        &self,
        ctx: &Context,
        opts: CallOptions,
        guard: impl Fn(&T) -> bool,
        f: impl FnOnce(&mut T, &Context) -> SimResult<R>,
    ) -> SimResult<R> {
        let mut f = Some(f);
        loop {
            let outcome = self.call_inner(ctx, opts, |data, ctx| {
                if guard(data) {
                    let f = f.take().expect("guard passed exactly once");
                    f(data, ctx).map(|r| (true, Some(r)))
                } else {
                    Ok((false, None))
                }
            })?;
            if let Some(r) = outcome {
                return Ok(r);
            }
            // Guard failed. Wait for a *completed method* before retrying;
            // our own probe only fired `released`, not `changed`, so this
            // cannot self-wake into a delta-cycle spin.
            ctx.wait_event(&self.inner.changed)?;
        }
    }

    fn call_inner<R>(
        &self,
        ctx: &Context,
        opts: CallOptions,
        f: impl FnOnce(&mut T, &Context) -> SimResult<(bool, R)>,
    ) -> SimResult<R> {
        let t_request = ctx.now();
        self.acquire(ctx, opts)?;
        let t_grant = ctx.now();

        let result = {
            let mut data = self.inner.data.lock();
            f(&mut data, ctx)
        };

        let t_done = ctx.now();
        let executed = matches!(&result, Ok((true, _)));
        {
            let mut st = self.inner.state.lock();
            st.busy = None;
            if executed {
                st.stats.calls = st.stats.calls.saturating_add(1);
                st.stats.total_arbitration_wait = st
                    .stats
                    .total_arbitration_wait
                    .saturating_add(t_grant - t_request);
                st.stats.total_busy = st.stats.total_busy.saturating_add(t_done - t_grant);
            }
        }
        ctx.notify(&self.inner.released);
        if executed || result.is_err() {
            ctx.notify(&self.inner.changed);
        }
        result.map(|(_, r)| r)
    }

    fn acquire(&self, ctx: &Context, opts: CallOptions) -> SimResult<()> {
        let me = ctx.pid();
        {
            let mut st = self.inner.state.lock();
            let seq = st.next_seq;
            st.next_seq += 1;
            st.pending.push(Request {
                client: me,
                priority: opts.priority,
                seq,
            });
            let pending = st.pending.len();
            if pending > st.stats.max_pending {
                st.stats.max_pending = pending;
            }
        }
        loop {
            {
                let mut st = self.inner.state.lock();
                if st.busy.is_none() {
                    if st.granted.is_none() {
                        let mut arb = self.inner.arbiter.lock();
                        if let Some(idx) = arb.pick(&st.pending) {
                            let r = st.pending[idx];
                            st.granted = Some((r.client, r.seq));
                        }
                    }
                    if let Some((client, seq)) = st.granted {
                        if client == me {
                            st.granted = None;
                            st.pending.retain(|r| !(r.client == me && r.seq == seq));
                            st.busy = Some(me);
                            return Ok(());
                        }
                    }
                }
            }
            ctx.wait_event(&self.inner.released)?;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{Fcfs, RoundRobin, StaticPriority};
    use std::sync::Mutex as StdMutex;

    #[test]
    fn blocking_call_serialises_access() {
        let mut sim = Simulation::new();
        let so = SharedObject::new(&mut sim, "so", 0u32, Fcfs::new());
        for i in 0..3 {
            let so = so.clone();
            sim.spawn_process(&format!("client{i}"), move |ctx| {
                so.call(ctx, |v, ctx| {
                    *v += 1;
                    ctx.wait(SimTime::us(10))
                })
            });
        }
        let report = sim.run().expect("run");
        // Three exclusive 10 us bodies => 30 us.
        assert_eq!(report.end_time, SimTime::us(30));
        assert_eq!(so.stats().calls, 3);
        assert_eq!(so.stats().total_busy, SimTime::us(30));
    }

    #[test]
    fn fcfs_grants_in_arrival_order() {
        let order = Arc::new(StdMutex::new(Vec::new()));
        let mut sim = Simulation::new();
        let so = SharedObject::new(&mut sim, "so", (), Fcfs::new());
        for i in 0..4u32 {
            let so = so.clone();
            let order = Arc::clone(&order);
            sim.spawn_process(&format!("c{i}"), move |ctx| {
                // Arrive staggered: c3 first, c0 last.
                ctx.wait(SimTime::ns(10 * (4 - i) as u64))?;
                so.call(ctx, |_, ctx| {
                    order.lock().unwrap().push(i);
                    ctx.wait(SimTime::us(1))
                })
            });
        }
        sim.run().expect("run");
        assert_eq!(*order.lock().unwrap(), vec![3, 2, 1, 0]);
    }

    #[test]
    fn static_priority_grants_high_priority_first() {
        let order = Arc::new(StdMutex::new(Vec::new()));
        let mut sim = Simulation::new();
        let so = SharedObject::new(&mut sim, "so", (), StaticPriority::new());
        // A long-running call occupies the object first; then all three
        // contenders queue up and priority decides.
        let so0 = so.clone();
        sim.spawn_process("occupier", move |ctx| {
            so0.call(ctx, |_, ctx| ctx.wait(SimTime::us(10)))
        });
        for (i, prio) in [(1u32, 1u32), (2, 9), (3, 5)] {
            let so = so.clone();
            let order = Arc::clone(&order);
            sim.spawn_process(&format!("c{i}"), move |ctx| {
                ctx.wait(SimTime::ns(100))?;
                so.call_with(ctx, CallOptions::new().priority(prio), |_, ctx| {
                    order.lock().unwrap().push(i);
                    ctx.wait(SimTime::us(1))
                })
            });
        }
        sim.run().expect("run");
        assert_eq!(*order.lock().unwrap(), vec![2, 3, 1]);
    }

    #[test]
    fn round_robin_alternates_clients() {
        let order = Arc::new(StdMutex::new(Vec::new()));
        let mut sim = Simulation::new();
        let so = SharedObject::new(&mut sim, "so", (), RoundRobin::new());
        for i in 0..2u32 {
            let so = so.clone();
            let order = Arc::clone(&order);
            sim.spawn_process(&format!("c{i}"), move |ctx| {
                for _ in 0..3 {
                    so.call(ctx, |_, ctx| {
                        order.lock().unwrap().push(i);
                        ctx.wait(SimTime::us(1))
                    })?;
                }
                Ok(())
            });
        }
        sim.run().expect("run");
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 0, 1, 0, 1]);
    }

    #[test]
    fn guarded_call_waits_for_condition() {
        let mut sim = Simulation::new();
        let so = SharedObject::new(&mut sim, "buf", Vec::<u8>::new(), Fcfs::new());
        let so_c = so.clone();
        sim.spawn_process("consumer", move |ctx| {
            let v = so_c.call_guarded(ctx, |b| !b.is_empty(), |b, _| Ok(b.remove(0)))?;
            assert_eq!(v, 9);
            assert_eq!(ctx.now(), SimTime::us(50));
            Ok(())
        });
        let so_p = so.clone();
        sim.spawn_process("producer", move |ctx| {
            ctx.wait(SimTime::us(50))?;
            so_p.call(ctx, |b, _| {
                let _: () = b.push(9);
                Ok(())
            })
        });
        sim.run()
            .expect("run")
            .expect_all_finished()
            .expect("all finished");
    }

    #[test]
    fn guard_failure_does_not_block_other_clients() {
        let mut sim = Simulation::new();
        let so = SharedObject::new(&mut sim, "so", 0u32, Fcfs::new());
        let so_g = so.clone();
        sim.spawn_process("guarded", move |ctx| {
            let v = so_g.call_guarded(ctx, |v| *v >= 2, |v, _| Ok(*v))?;
            assert_eq!(v, 2);
            Ok(())
        });
        let so_w = so.clone();
        sim.spawn_process("writer", move |ctx| {
            for _ in 0..2 {
                ctx.wait(SimTime::us(1))?;
                // Must get in even though "guarded" keeps retrying.
                so_w.call(ctx, |v, _| {
                    *v += 1;
                    Ok(())
                })?;
            }
            Ok(())
        });
        sim.run()
            .expect("run")
            .expect_all_finished()
            .expect("all finished");
    }

    #[test]
    fn guarded_call_alone_does_not_spin() {
        // A guarded call whose condition never becomes true must block
        // quietly (no delta-cycle livelock) and be reported as blocked.
        let mut sim = Simulation::new();
        let so = SharedObject::new(&mut sim, "so", 0u32, Fcfs::new());
        let so_g = so.clone();
        sim.spawn_process("guarded", move |ctx| {
            so_g.call_guarded(ctx, |v| *v > 0, |v, _| Ok(*v))?;
            Ok(())
        });
        let report = sim.run().expect("run");
        assert_eq!(report.blocked, vec!["guarded".to_string()]);
    }

    #[test]
    fn stats_capture_arbitration_wait() {
        let mut sim = Simulation::new();
        let so = SharedObject::new(&mut sim, "so", (), Fcfs::new());
        let so1 = so.clone();
        sim.spawn_process("first", move |ctx| {
            so1.call(ctx, |_, ctx| ctx.wait(SimTime::us(10)))
        });
        let so2 = so.clone();
        sim.spawn_process("second", move |ctx| {
            so2.call(ctx, |_, _| Ok(())) // must wait ~10 us for the grant
        });
        sim.run().expect("run");
        let stats = so.stats();
        assert_eq!(stats.calls, 2);
        assert_eq!(stats.total_arbitration_wait, SimTime::us(10));
        // The first request was granted (and dequeued) before the second
        // arrived, so at most one request was ever pending at once.
        assert_eq!(stats.max_pending, 1);
    }

    #[test]
    fn stats_merge_saturates_at_the_u64_boundary() {
        let mut a = SoStats {
            calls: u64::MAX - 1,
            total_arbitration_wait: SimTime::MAX,
            total_busy: SimTime::ZERO,
            max_pending: 3,
        };
        let b = SoStats {
            calls: 7,
            total_arbitration_wait: SimTime::us(1),
            total_busy: SimTime::MAX,
            max_pending: 2,
        };
        a += b;
        assert_eq!(a.calls, u64::MAX);
        assert_eq!(a.total_arbitration_wait, SimTime::MAX);
        assert_eq!(a.total_busy, SimTime::MAX);
        assert_eq!(a.max_pending, 3);
        // Merging a default is the identity.
        let before = a;
        a += SoStats::default();
        assert_eq!(a, before);
    }

    #[test]
    fn error_from_method_body_propagates_and_releases() {
        use osss_sim::SimError;
        let mut sim = Simulation::new();
        let so = SharedObject::new(&mut sim, "so", (), Fcfs::new());
        let so1 = so.clone();
        sim.spawn_process("failing", move |ctx| {
            let r: SimResult<()> = so1.call(ctx, |_, _| Err(SimError::model("bad input")));
            assert!(r.is_err());
            Ok(())
        });
        let so2 = so.clone();
        sim.spawn_process("next", move |ctx| {
            ctx.wait(SimTime::ns(1))?;
            // Object must not stay locked after the failed call.
            so2.call(ctx, |_, _| Ok(()))
        });
        sim.run()
            .expect("run")
            .expect_all_finished()
            .expect("all finished");
    }
}
