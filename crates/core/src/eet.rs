//! Estimated / Required Execution Time annotation blocks.
//!
//! OSSS annotates software timing with `OSSS_EET` blocks: the enclosed code
//! runs functionally and the stated estimated time elapses. On the
//! Application Layer, elapsing time is a plain kernel wait; after mapping a
//! task onto a *Software Processor* (VTA layer), the same annotation must
//! consume exclusive CPU time so that co-mapped tasks serialise. The
//! [`EetSink`] trait is that seam: behaviour code calls
//! [`TaskEnv::eet`] and never changes between layers.

use std::sync::Arc;

use osss_sim::{Context, SimError, SimResult, SimTime};

/// Where annotated execution time is spent.
///
/// * Application Layer: [`UnboundTime`] — time passes without any resource.
/// * VTA layer: a software processor — time passes while holding the CPU.
pub trait EetSink: Send + Sync {
    /// Consumes `t` of execution time on behalf of the calling process.
    ///
    /// # Errors
    ///
    /// [`SimError::Terminated`] when the simulation is shutting down.
    fn consume(&self, ctx: &Context, t: SimTime) -> SimResult<()>;

    /// Descriptive name of the resource (for reports).
    fn resource_name(&self) -> String;
}

/// The Application-Layer sink: annotated time elapses unconstrained.
#[derive(Debug, Clone, Copy, Default)]
pub struct UnboundTime;

impl EetSink for UnboundTime {
    fn consume(&self, ctx: &Context, t: SimTime) -> SimResult<()> {
        ctx.wait(t)
    }

    fn resource_name(&self) -> String {
        "application-layer".to_string()
    }
}

/// The execution environment of one software task: its name plus the sink
/// its EET blocks draw time from.
///
/// Cloneable; clones share the sink.
#[derive(Clone)]
pub struct TaskEnv {
    name: Arc<str>,
    sink: Arc<dyn EetSink>,
}

impl std::fmt::Debug for TaskEnv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskEnv")
            .field("name", &self.name)
            .field("sink", &self.sink.resource_name())
            .finish()
    }
}

impl TaskEnv {
    /// An Application-Layer environment ([`UnboundTime`] sink).
    pub fn application_layer(name: &str) -> Self {
        TaskEnv {
            name: Arc::from(name),
            sink: Arc::new(UnboundTime),
        }
    }

    /// An environment drawing time from a custom sink (e.g. a VTA software
    /// processor).
    pub fn bound_to(name: &str, sink: Arc<dyn EetSink>) -> Self {
        TaskEnv {
            name: Arc::from(name),
            sink,
        }
    }

    /// The task name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The name of the resource time is drawn from.
    pub fn resource_name(&self) -> String {
        self.sink.resource_name()
    }

    /// `OSSS_EET` block: runs `f` functionally, then elapses the estimated
    /// execution time on this task's resource.
    ///
    /// ```
    /// # use osss_sim::{Simulation, SimTime};
    /// # use osss_core::TaskEnv;
    /// # let mut sim = Simulation::new();
    /// # let env = TaskEnv::application_layer("t");
    /// # sim.spawn_process("p", move |ctx| {
    /// let decoded = env.eet(ctx, SimTime::ms(180), || 2 + 2)?;
    /// assert_eq!(decoded, 4);
    /// # Ok(()) });
    /// # sim.run().unwrap();
    /// ```
    ///
    /// # Errors
    ///
    /// [`SimError::Terminated`] when the simulation is shutting down.
    pub fn eet<R>(&self, ctx: &Context, estimated: SimTime, f: impl FnOnce() -> R) -> SimResult<R> {
        let r = f();
        self.sink.consume(ctx, estimated)?;
        Ok(r)
    }

    /// `OSSS_RET` block: runs `f` (which may itself contain EETs and
    /// blocking calls) and errors if more than `required` simulated time
    /// elapsed — OSSS's deadline check.
    ///
    /// # Errors
    ///
    /// [`SimError::Model`] on deadline violation; otherwise propagates
    /// errors from `f`.
    pub fn ret<R>(
        &self,
        ctx: &Context,
        required: SimTime,
        f: impl FnOnce(&Context) -> SimResult<R>,
    ) -> SimResult<R> {
        let start = ctx.now();
        let r = f(ctx)?;
        let elapsed = ctx.now() - start;
        if elapsed > required {
            return Err(SimError::model(format!(
                "RET violated in task `{}`: required {required}, took {elapsed}",
                self.name
            )));
        }
        Ok(r)
    }
}

/// Free-function form of an EET block on the Application Layer.
///
/// # Errors
///
/// [`SimError::Terminated`] when the simulation is shutting down.
pub fn eet<R>(ctx: &Context, estimated: SimTime, f: impl FnOnce() -> R) -> SimResult<R> {
    let r = f();
    ctx.wait(estimated)?;
    Ok(r)
}

/// Free-function form of an RET (deadline) block.
///
/// # Errors
///
/// [`SimError::Model`] on deadline violation; otherwise propagates errors
/// from `f`.
pub fn ret<R>(
    ctx: &Context,
    required: SimTime,
    f: impl FnOnce(&Context) -> SimResult<R>,
) -> SimResult<R> {
    let start = ctx.now();
    let r = f(ctx)?;
    let elapsed = ctx.now() - start;
    if elapsed > required {
        return Err(SimError::model(format!(
            "RET violated: required {required}, took {elapsed}"
        )));
    }
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use osss_sim::Simulation;

    #[test]
    fn eet_elapses_time_and_returns_value() {
        let mut sim = Simulation::new();
        let env = TaskEnv::application_layer("t");
        sim.spawn_process("p", move |ctx| {
            let v = env.eet(ctx, SimTime::ms(180), || 41 + 1)?;
            assert_eq!(v, 42);
            assert_eq!(ctx.now(), SimTime::ms(180));
            Ok(())
        });
        sim.run().expect("run");
    }

    #[test]
    fn ret_passes_within_deadline() {
        let mut sim = Simulation::new();
        let env = TaskEnv::application_layer("t");
        sim.spawn_process("p", move |ctx| {
            env.ret(ctx, SimTime::ms(10), |ctx| ctx.wait(SimTime::ms(5)))?;
            Ok(())
        });
        sim.run().expect("run");
    }

    #[test]
    fn ret_violation_is_an_error() {
        let mut sim = Simulation::new();
        let env = TaskEnv::application_layer("t");
        sim.spawn_process("p", move |ctx| {
            env.ret(ctx, SimTime::ms(1), |ctx| ctx.wait(SimTime::ms(5)))
                .map(|_| ())
        });
        let err = sim.run().expect_err("deadline violated");
        assert!(matches!(err, SimError::Model(msg) if msg.contains("RET violated")));
    }

    #[test]
    fn free_functions_match_env_behaviour() {
        let mut sim = Simulation::new();
        sim.spawn_process("p", move |ctx| {
            let v = eet(ctx, SimTime::us(3), || 7)?;
            assert_eq!(v, 7);
            ret(ctx, SimTime::us(10), |ctx| ctx.wait(SimTime::us(2)))?;
            assert_eq!(ctx.now(), SimTime::us(5));
            Ok(())
        });
        sim.run().expect("run");
    }

    #[test]
    fn nested_eet_inside_ret_counts() {
        let mut sim = Simulation::new();
        let env = TaskEnv::application_layer("t");
        sim.spawn_process("p", move |ctx| {
            let out = env.clone().ret(ctx, SimTime::ms(100), |ctx| {
                env.eet(ctx, SimTime::ms(30), || ())?;
                env.eet(ctx, SimTime::ms(40), || 5)
            })?;
            assert_eq!(out, 5);
            assert_eq!(ctx.now(), SimTime::ms(70));
            Ok(())
        });
        sim.run().expect("run");
    }
}
