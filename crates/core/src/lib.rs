//! # osss-core — the OSSS Application Layer
//!
//! Re-implementation of the OSSS (Oldenburg System Synthesis Subset)
//! Application-Layer modelling concepts from the DATE 2008 JPEG 2000
//! case study:
//!
//! * [`SharedObject`] — passive objects offering **blocking, method-based
//!   communication** between active components, with pluggable arbitration
//!   ([`sched::Fcfs`], [`sched::RoundRobin`], [`sched::StaticPriority`])
//!   and *guarded methods*.
//! * [`TaskEnv`] + [`eet`]/[`ret`] — Estimated/Required Execution Time
//!   annotation blocks. On the Application Layer an EET simply elapses
//!   simulated time; on the VTA layer the same call consumes exclusive
//!   processor time (see `osss-vta`), which is exactly the paper's
//!   "seamless refinement" property: behaviour code is written once.
//! * [`SwTask`] / [`Module`] — the two active structural block kinds.
//!
//! ## Example
//!
//! ```
//! use osss_sim::{Simulation, SimTime};
//! use osss_core::{SharedObject, sched::Fcfs, TaskEnv};
//!
//! # fn main() -> Result<(), osss_sim::SimError> {
//! let mut sim = Simulation::new();
//! // A shared object wrapping a co-processor state.
//! let so = SharedObject::new(&mut sim, "iq_idwt", 0u64, Fcfs::new());
//!
//! let env = TaskEnv::application_layer("decoder");
//! let so2 = so.clone();
//! sim.spawn_process("sw_task", move |ctx| {
//!     // Blocking method call: does not return until the body completes.
//!     let sum = so2.call(ctx, |state, ctx| {
//!         *state += 42;
//!         ctx.wait(SimTime::us(10))?; // the co-processor's compute time
//!         Ok(*state)
//!     })?;
//!     assert_eq!(sum, 42);
//!     env.eet(ctx, SimTime::us(5), || ())?; // annotated software work
//!     Ok(())
//! });
//! assert_eq!(sim.run()?.end_time, SimTime::us(15));
//! # Ok(())
//! # }
//! ```

mod eet;
pub mod sched;
mod shared;
mod task;

pub use eet::{eet, ret, EetSink, TaskEnv, UnboundTime};
pub use shared::{CallOptions, SharedObject, SoStats};
pub use task::{Module, SwTask};
