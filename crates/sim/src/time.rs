//! Simulation time and clock-frequency arithmetic.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in (or duration of) simulated time, stored in picoseconds.
///
/// A `u64` picosecond count covers roughly 213 days of simulated time,
/// far beyond anything the JPEG 2000 experiments need (seconds).
///
/// # Example
///
/// ```
/// use osss_sim::SimTime;
/// let t = SimTime::ms(180) + SimTime::us(500);
/// assert_eq!(t.as_ns(), 180_500_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The zero duration / start of simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable time.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from picoseconds.
    pub const fn ps(ps: u64) -> Self {
        SimTime(ps)
    }
    /// Creates a time from nanoseconds.
    pub const fn ns(ns: u64) -> Self {
        SimTime(ns * 1_000)
    }
    /// Creates a time from microseconds.
    pub const fn us(us: u64) -> Self {
        SimTime(us * 1_000_000)
    }
    /// Creates a time from milliseconds.
    pub const fn ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000_000)
    }
    /// Creates a time from seconds.
    pub const fn secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000_000)
    }

    /// The raw picosecond count.
    pub const fn as_ps(self) -> u64 {
        self.0
    }
    /// This time in whole nanoseconds (truncating).
    pub const fn as_ns(self) -> u64 {
        self.0 / 1_000
    }
    /// This time in whole microseconds (truncating).
    pub const fn as_us(self) -> u64 {
        self.0 / 1_000_000
    }
    /// This time in whole milliseconds (truncating).
    pub const fn as_ms(self) -> u64 {
        self.0 / 1_000_000_000
    }
    /// This time as fractional milliseconds.
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
    /// This time as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Whether this is the zero time.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating addition.
    pub const fn saturating_add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }

    /// Checked subtraction; `None` if `rhs > self`.
    pub const fn checked_sub(self, rhs: SimTime) -> Option<SimTime> {
        match self.0.checked_sub(rhs.0) {
            Some(v) => Some(SimTime(v)),
            None => None,
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Div<SimTime> for SimTime {
    type Output = u64;
    /// How many times `rhs` fits in `self` (truncating).
    fn div(self, rhs: SimTime) -> u64 {
        self.0 / rhs.0
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps == 0 {
            return write!(f, "0 s");
        }
        let (value, unit, div): (u64, &str, u64) = if ps.is_multiple_of(1_000_000_000_000) {
            (ps / 1_000_000_000_000, "s", 1)
        } else if ps >= 1_000_000_000 {
            (ps, "ms", 1_000_000_000)
        } else if ps >= 1_000_000 {
            (ps, "us", 1_000_000)
        } else if ps >= 1_000 {
            (ps, "ns", 1_000)
        } else {
            (ps, "ps", 1)
        };
        if div == 1 {
            write!(f, "{value} {unit}")
        } else if value % div == 0 {
            write!(f, "{} {unit}", value / div)
        } else {
            write!(f, "{:.3} {unit}", value as f64 / div as f64)
        }
    }
}

/// A clock frequency, used to convert cycle counts into [`SimTime`].
///
/// The case study platform runs both the OPB bus and the PowerPC-class
/// processor at 100 MHz, so cycle-accurate costs are expressed as cycle
/// counts and converted through a `Frequency`.
///
/// # Example
///
/// ```
/// use osss_sim::{Frequency, SimTime};
/// let clk = Frequency::mhz(100);
/// assert_eq!(clk.period(), SimTime::ns(10));
/// assert_eq!(clk.cycles(5), SimTime::ns(50));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Frequency {
    hz: u64,
}

impl Frequency {
    /// Creates a frequency from hertz.
    ///
    /// # Panics
    ///
    /// Panics if `hz` is zero.
    pub fn hz(hz: u64) -> Self {
        assert!(hz > 0, "frequency must be non-zero");
        Frequency { hz }
    }

    /// Creates a frequency from kilohertz.
    pub fn khz(khz: u64) -> Self {
        Self::hz(khz * 1_000)
    }

    /// Creates a frequency from megahertz.
    pub fn mhz(mhz: u64) -> Self {
        Self::hz(mhz * 1_000_000)
    }

    /// The frequency in hertz.
    pub fn as_hz(self) -> u64 {
        self.hz
    }

    /// The frequency in megahertz (fractional).
    pub fn as_mhz_f64(self) -> f64 {
        self.hz as f64 / 1e6
    }

    /// The duration of one clock cycle.
    pub fn period(self) -> SimTime {
        SimTime::ps(1_000_000_000_000 / self.hz)
    }

    /// The duration of `n` clock cycles.
    pub fn cycles(self, n: u64) -> SimTime {
        // Multiply before dividing to keep precision for non-integral periods.
        SimTime::ps((n as u128 * 1_000_000_000_000u128 / self.hz as u128) as u64)
    }

    /// How many whole cycles fit in `t`.
    pub fn cycles_in(self, t: SimTime) -> u64 {
        (t.as_ps() as u128 * self.hz as u128 / 1_000_000_000_000u128) as u64
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.hz.is_multiple_of(1_000_000) {
            write!(f, "{} MHz", self.hz / 1_000_000)
        } else {
            write!(f, "{} Hz", self.hz)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constructors_agree() {
        assert_eq!(SimTime::ns(1), SimTime::ps(1_000));
        assert_eq!(SimTime::us(1), SimTime::ns(1_000));
        assert_eq!(SimTime::ms(1), SimTime::us(1_000));
        assert_eq!(SimTime::secs(1), SimTime::ms(1_000));
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::ns(30);
        let b = SimTime::ns(12);
        assert_eq!(a + b, SimTime::ns(42));
        assert_eq!(a - b, SimTime::ns(18));
        assert_eq!(b * 4, SimTime::ns(48));
        assert_eq!(a / 3, SimTime::ns(10));
        assert_eq!(a / b, 2);
        assert_eq!(SimTime::MAX.saturating_add(SimTime::ns(1)), SimTime::MAX);
        assert_eq!(b.checked_sub(a), None);
        assert_eq!(a.checked_sub(b), Some(SimTime::ns(18)));
    }

    #[test]
    fn conversions() {
        let t = SimTime::ms(180);
        assert_eq!(t.as_ms(), 180);
        assert_eq!(t.as_us(), 180_000);
        assert!((t.as_ms_f64() - 180.0).abs() < 1e-12);
        assert!((t.as_secs_f64() - 0.18).abs() < 1e-12);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimTime::ZERO.to_string(), "0 s");
        assert_eq!(SimTime::ns(10).to_string(), "10 ns");
        assert_eq!(SimTime::ms(3).to_string(), "3 ms");
        assert_eq!(SimTime::secs(2).to_string(), "2 s");
        assert_eq!(SimTime::ps(999).to_string(), "999 ps");
        assert_eq!(SimTime::us(1500).to_string(), "1.500 ms");
    }

    #[test]
    fn frequency_period_and_cycles() {
        let clk = Frequency::mhz(100);
        assert_eq!(clk.period(), SimTime::ns(10));
        assert_eq!(clk.cycles(0), SimTime::ZERO);
        assert_eq!(clk.cycles(123), SimTime::ns(1_230));
        assert_eq!(clk.cycles_in(SimTime::us(1)), 100);
    }

    #[test]
    fn frequency_non_integral_period() {
        let clk = Frequency::mhz(333);
        // 3.003003... ns per cycle; 333 cycles must be ~1 us within a ps.
        let t = clk.cycles(333);
        assert!(t >= SimTime::ns(999) && t <= SimTime::us(1));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_frequency_panics() {
        let _ = Frequency::hz(0);
    }

    #[test]
    fn sum_of_times() {
        let total: SimTime = [SimTime::ns(1), SimTime::ns(2), SimTime::ns(3)]
            .into_iter()
            .sum();
        assert_eq!(total, SimTime::ns(6));
    }
}
