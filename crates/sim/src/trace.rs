//! Lightweight value-change tracing for debugging models.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::context::Context;
use crate::time::SimTime;

/// One recorded value change.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Simulation time of the change.
    pub time: SimTime,
    /// Name of the traced quantity.
    pub name: String,
    /// Rendered value.
    pub value: String,
}

/// Records `(time, name, value)` triples during simulation and renders them
/// as a value-change dump.
///
/// Dots in a name become VCD hierarchy: `vta.bus.words` is declared as
/// variable `words` inside `$scope module vta` / `$scope module bus`.
/// Undotted names land in a root scope named `trace`. Signals whose
/// values all parse as `i64` are declared as 64-bit wires and emitted
/// as two's-complement vector changes; any other signal is declared
/// with the `string` var type.
///
/// # Example
///
/// ```
/// use osss_sim::{Simulation, SimTime};
/// use osss_sim::trace::Tracer;
///
/// # fn main() -> Result<(), osss_sim::SimError> {
/// let tracer = Tracer::new();
/// let mut sim = Simulation::new();
/// let t = tracer.clone();
/// sim.spawn_process("p", move |ctx| {
///     t.record(ctx, "state", "DECODE");
///     ctx.wait(SimTime::ns(10))?;
///     t.record(ctx, "state", "IDWT");
///     Ok(())
/// });
/// sim.run()?;
/// assert_eq!(tracer.len(), 2);
/// assert!(tracer.to_text().contains("IDWT"));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default)]
pub struct Tracer {
    records: Arc<Mutex<Vec<TraceRecord>>>,
}

impl Tracer {
    /// Creates an empty tracer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record at the current simulation time.
    pub fn record(&self, ctx: &Context, name: &str, value: impl ToString) {
        self.record_at(ctx.now(), name, value);
    }

    /// Appends a record at an explicit time — for callers outside a
    /// simulation process (native worker threads, post-run analysis).
    pub fn record_at(&self, time: SimTime, name: &str, value: impl ToString) {
        self.records.lock().push(TraceRecord {
            time,
            name: name.to_string(),
            value: value.to_string(),
        });
    }

    /// Number of records captured so far.
    pub fn len(&self) -> usize {
        self.records.lock().len()
    }

    /// Whether no records were captured.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of all records.
    pub fn records(&self) -> Vec<TraceRecord> {
        self.records.lock().clone()
    }

    /// Renders the dump as `time  name = value` lines.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for r in self.records.lock().iter() {
            let _ = writeln!(out, "{:>14}  {} = {}", r.time.to_string(), r.name, r.value);
        }
        out
    }

    /// Renders the dump as a VCD (value change dump) file that standard
    /// waveform viewers (GTKWave etc.) open directly.
    ///
    /// Records are sorted stably by time, so concurrently captured
    /// records (e.g. from [`Self::record_at`] on worker threads) still
    /// yield monotonic timestamps. Numeric signals emit 64-bit
    /// two's-complement vector changes — negative values are preserved,
    /// not folded onto their absolute value. Non-numeric signals are
    /// declared `string` so their `s...` changes are valid VCD.
    pub fn to_vcd(&self) -> String {
        let mut records = self.records.lock().clone();
        records.sort_by_key(|r| r.time);

        // Stable identifier per traced name, in first-appearance order,
        // with an O(1) map instead of a per-record linear scan.
        let mut index: HashMap<&str, usize> = HashMap::new();
        let mut names: Vec<&str> = Vec::new();
        let mut numeric: Vec<bool> = Vec::new();
        for r in records.iter() {
            let idx = *index.entry(r.name.as_str()).or_insert_with(|| {
                names.push(&r.name);
                numeric.push(true);
                names.len() - 1
            });
            numeric[idx] &= r.value.parse::<i64>().is_ok();
        }

        let mut out = String::new();
        let _ = writeln!(out, "$timescale 1ps $end");
        write_scope_tree(&mut out, &names, &numeric);
        let _ = writeln!(out, "$enddefinitions $end");

        let mut last_time: Option<SimTime> = None;
        for r in records.iter() {
            if last_time != Some(r.time) {
                let _ = writeln!(out, "#{}", r.time.as_ps());
                last_time = Some(r.time);
            }
            let idx = index[r.name.as_str()];
            match r.value.parse::<i64>() {
                Ok(v) if numeric[idx] => {
                    // 64-bit two's complement: -5 and 5 are distinct.
                    let _ = writeln!(out, "b{:b} {}", v as u64, ident(idx));
                }
                _ => {
                    let _ = writeln!(out, "s{} {}", r.value.replace(' ', "_"), ident(idx));
                }
            }
        }
        out
    }
}

/// VCD identifiers: printable ASCII starting at '!'.
fn ident(idx: usize) -> String {
    let mut id = String::new();
    let mut n = idx;
    loop {
        id.push((b'!' + (n % 94) as u8) as char);
        n /= 94;
        if n == 0 {
            break;
        }
    }
    id
}

/// Emits `$scope`/`$var`/`$upscope` lines for the dotted name set:
/// `a.b.c` nests variable `c` inside scopes `a` and `b`; undotted names
/// live in a root scope called `trace`.
fn write_scope_tree(out: &mut String, names: &[&str], numeric: &[bool]) {
    #[derive(Default)]
    struct Node<'a> {
        // Vec keeps first-appearance order; scope counts are tiny.
        subs: Vec<(&'a str, Node<'a>)>,
        vars: Vec<(usize, &'a str)>,
    }
    impl<'a> Node<'a> {
        fn child(&mut self, seg: &'a str) -> &mut Node<'a> {
            if let Some(i) = self.subs.iter().position(|(s, _)| *s == seg) {
                return &mut self.subs[i].1;
            }
            self.subs.push((seg, Node::default()));
            &mut self.subs.last_mut().expect("just pushed").1
        }
    }

    let mut root = Node::default();
    for (i, name) in names.iter().enumerate() {
        let mut node = &mut root;
        let mut rest = *name;
        let mut nested = false;
        while let Some((seg, tail)) = rest.split_once('.') {
            if seg.is_empty() {
                break;
            }
            node = node.child(seg);
            nested = true;
            rest = tail;
        }
        if !nested {
            node = node.child("trace");
        }
        node.vars.push((i, rest));
    }

    fn emit(out: &mut String, node: &Node<'_>, numeric: &[bool]) {
        for &(idx, leaf) in &node.vars {
            if numeric[idx] {
                let _ = writeln!(out, "$var wire 64 {} {} $end", ident(idx), leaf);
            } else {
                let _ = writeln!(out, "$var string 1 {} {} $end", ident(idx), leaf);
            }
        }
        for (name, sub) in &node.subs {
            let _ = writeln!(out, "$scope module {name} $end");
            emit(out, sub, numeric);
            let _ = writeln!(out, "$upscope $end");
        }
    }
    emit(out, &root, numeric);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::Simulation;
    use crate::vcd;

    #[test]
    fn records_are_ordered_by_time() {
        let tracer = Tracer::new();
        let mut sim = Simulation::new();
        let t = tracer.clone();
        sim.spawn_process("p", move |ctx| {
            t.record(ctx, "x", 1);
            ctx.wait(SimTime::ns(5))?;
            t.record(ctx, "x", 2);
            Ok(())
        });
        sim.run().expect("run");
        let recs = tracer.records();
        assert_eq!(recs.len(), 2);
        assert!(recs[0].time < recs[1].time);
        assert_eq!(recs[1].value, "2");
    }

    #[test]
    fn empty_tracer() {
        let tracer = Tracer::new();
        assert!(tracer.is_empty());
        assert_eq!(tracer.to_text(), "");
    }

    #[test]
    fn vcd_output_has_header_vars_and_changes() {
        let tracer = Tracer::new();
        let mut sim = Simulation::new();
        let t = tracer.clone();
        sim.spawn_process("p", move |ctx| {
            t.record(ctx, "count", 1);
            t.record(ctx, "state", "DECODE");
            ctx.wait(SimTime::ns(3))?;
            t.record(ctx, "count", 2);
            Ok(())
        });
        sim.run().expect("run");
        let vcd_text = tracer.to_vcd();
        assert!(vcd_text.starts_with("$timescale 1ps $end"));
        assert!(vcd_text.contains("$var wire 64 ! count $end"));
        assert!(
            vcd_text.contains("$var string 1 \" state $end"),
            "non-numeric signals must be declared string, not wire:\n{vcd_text}"
        );
        assert!(vcd_text.contains("$enddefinitions $end"));
        assert!(vcd_text.contains("#0\n"));
        assert!(vcd_text.contains("#3000\n"), "3 ns = 3000 ps");
        assert!(vcd_text.contains("b1 !"));
        assert!(vcd_text.contains("b10 !"), "2 in binary");
        assert!(vcd_text.contains("sDECODE \""));
        vcd::parse(&vcd_text).expect("self-validating dump");
    }

    #[test]
    fn vcd_timestamps_are_not_repeated() {
        let tracer = Tracer::new();
        let mut sim = Simulation::new();
        let t = tracer.clone();
        sim.spawn_process("p", move |ctx| {
            t.record(ctx, "a", 1);
            t.record(ctx, "b", 2); // same instant: one #0 line
            ctx.wait(SimTime::ns(1))?;
            t.record(ctx, "a", 3);
            Ok(())
        });
        sim.run().expect("run");
        let vcd_text = tracer.to_vcd();
        assert_eq!(vcd_text.matches("#0\n").count(), 1);
        assert_eq!(vcd_text.matches("#1000\n").count(), 1);
    }

    #[test]
    fn negative_values_are_twos_complement_not_abs() {
        // Regression: the old dump rendered -5 via unsigned_abs(), so
        // -5 and 5 emitted the identical `b101` line.
        let tracer = Tracer::new();
        tracer.record_at(SimTime::ZERO, "credit", 5);
        tracer.record_at(SimTime::ns(1), "credit", -5);
        let vcd_text = tracer.to_vcd();
        assert!(vcd_text.contains("b101 !"), "positive five:\n{vcd_text}");
        let minus_five = format!("b{:b} !", -5i64 as u64);
        assert!(
            vcd_text.contains(&minus_five),
            "negative five must be 64-bit two's complement:\n{vcd_text}"
        );
        assert_eq!(
            vcd_text.matches("b101 !").count(),
            1,
            "-5 must not collapse onto 5"
        );
        let doc = vcd::parse(&vcd_text).expect("valid");
        assert_eq!(doc.changes_of("credit").len(), 2);
    }

    #[test]
    fn dotted_names_become_nested_scopes() {
        let tracer = Tracer::new();
        tracer.record_at(SimTime::ZERO, "vta.bus.words", 8);
        tracer.record_at(SimTime::ZERO, "vta.cpu.state", "RUN");
        tracer.record_at(SimTime::ZERO, "plain", 1);
        let vcd_text = tracer.to_vcd();
        let doc = vcd::parse(&vcd_text).expect("valid");
        assert_eq!(
            doc.var_named("words").expect("words").scope,
            vec!["vta", "bus"]
        );
        assert_eq!(doc.var_named("state").expect("state").var_type, "string");
        assert_eq!(doc.var_named("plain").expect("plain").scope, vec!["trace"]);
    }

    #[test]
    fn mixed_type_signal_falls_back_to_string() {
        let tracer = Tracer::new();
        tracer.record_at(SimTime::ZERO, "s", 3);
        tracer.record_at(SimTime::ns(1), "s", "IDLE");
        let vcd_text = tracer.to_vcd();
        assert!(vcd_text.contains("$var string 1 ! s $end"));
        assert!(vcd_text.contains("s3 !"), "numeric value as string change");
        vcd::parse(&vcd_text).expect("valid");
    }

    #[test]
    fn out_of_order_record_at_still_yields_monotonic_vcd() {
        let tracer = Tracer::new();
        tracer.record_at(SimTime::ns(2), "x", 2);
        tracer.record_at(SimTime::ns(1), "x", 1);
        tracer.record_at(SimTime::ns(2), "y", 9);
        let doc = vcd::parse(&tracer.to_vcd()).expect("valid");
        assert_eq!(doc.changes.len(), 3);
        assert_eq!(doc.changes[0].time, 1000);
    }
}
