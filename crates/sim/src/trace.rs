//! Lightweight value-change tracing for debugging models.

use std::fmt::Write as _;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::context::Context;
use crate::time::SimTime;

/// One recorded value change.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Simulation time of the change.
    pub time: SimTime,
    /// Name of the traced quantity.
    pub name: String,
    /// Rendered value.
    pub value: String,
}

/// Records `(time, name, value)` triples during simulation and renders them
/// as a simple value-change dump.
///
/// # Example
///
/// ```
/// use osss_sim::{Simulation, SimTime};
/// use osss_sim::trace::Tracer;
///
/// # fn main() -> Result<(), osss_sim::SimError> {
/// let tracer = Tracer::new();
/// let mut sim = Simulation::new();
/// let t = tracer.clone();
/// sim.spawn_process("p", move |ctx| {
///     t.record(ctx, "state", "DECODE");
///     ctx.wait(SimTime::ns(10))?;
///     t.record(ctx, "state", "IDWT");
///     Ok(())
/// });
/// sim.run()?;
/// assert_eq!(tracer.len(), 2);
/// assert!(tracer.to_text().contains("IDWT"));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default)]
pub struct Tracer {
    records: Arc<Mutex<Vec<TraceRecord>>>,
}

impl Tracer {
    /// Creates an empty tracer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record at the current simulation time.
    pub fn record(&self, ctx: &Context, name: &str, value: impl ToString) {
        self.records.lock().push(TraceRecord {
            time: ctx.now(),
            name: name.to_string(),
            value: value.to_string(),
        });
    }

    /// Number of records captured so far.
    pub fn len(&self) -> usize {
        self.records.lock().len()
    }

    /// Whether no records were captured.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of all records.
    pub fn records(&self) -> Vec<TraceRecord> {
        self.records.lock().clone()
    }

    /// Renders the dump as `time  name = value` lines.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for r in self.records.lock().iter() {
            let _ = writeln!(out, "{:>14}  {} = {}", r.time.to_string(), r.name, r.value);
        }
        out
    }

    /// Renders the dump as a VCD (value change dump) file that standard
    /// waveform viewers (GTKWave etc.) open directly. Numeric values
    /// become binary vector changes; everything else becomes string
    /// changes.
    pub fn to_vcd(&self) -> String {
        let records = self.records.lock();
        // Stable identifier per traced name, in first-appearance order.
        let mut names: Vec<&str> = Vec::new();
        for r in records.iter() {
            if !names.contains(&r.name.as_str()) {
                names.push(&r.name);
            }
        }
        let ident = |idx: usize| -> String {
            // VCD identifiers: printable ASCII starting at '!'.
            let mut id = String::new();
            let mut n = idx;
            loop {
                id.push((b'!' + (n % 94) as u8) as char);
                n /= 94;
                if n == 0 {
                    break;
                }
            }
            id
        };
        let mut out = String::new();
        let _ = writeln!(out, "$timescale 1ps $end");
        let _ = writeln!(out, "$scope module trace $end");
        for (i, name) in names.iter().enumerate() {
            let _ = writeln!(out, "$var wire 64 {} {} $end", ident(i), name);
        }
        let _ = writeln!(out, "$upscope $end");
        let _ = writeln!(out, "$enddefinitions $end");
        let mut last_time: Option<SimTime> = None;
        for r in records.iter() {
            if last_time != Some(r.time) {
                let _ = writeln!(out, "#{}", r.time.as_ps());
                last_time = Some(r.time);
            }
            let idx = names.iter().position(|n| *n == r.name).expect("collected");
            match r.value.parse::<i64>() {
                Ok(v) => {
                    let _ = writeln!(out, "b{:b} {}", v.unsigned_abs(), ident(idx));
                }
                Err(_) => {
                    let _ = writeln!(out, "s{} {}", r.value.replace(' ', "_"), ident(idx));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::Simulation;

    #[test]
    fn records_are_ordered_by_time() {
        let tracer = Tracer::new();
        let mut sim = Simulation::new();
        let t = tracer.clone();
        sim.spawn_process("p", move |ctx| {
            t.record(ctx, "x", 1);
            ctx.wait(SimTime::ns(5))?;
            t.record(ctx, "x", 2);
            Ok(())
        });
        sim.run().expect("run");
        let recs = tracer.records();
        assert_eq!(recs.len(), 2);
        assert!(recs[0].time < recs[1].time);
        assert_eq!(recs[1].value, "2");
    }

    #[test]
    fn empty_tracer() {
        let tracer = Tracer::new();
        assert!(tracer.is_empty());
        assert_eq!(tracer.to_text(), "");
    }

    #[test]
    fn vcd_output_has_header_vars_and_changes() {
        let tracer = Tracer::new();
        let mut sim = Simulation::new();
        let t = tracer.clone();
        sim.spawn_process("p", move |ctx| {
            t.record(ctx, "count", 1);
            t.record(ctx, "state", "DECODE");
            ctx.wait(SimTime::ns(3))?;
            t.record(ctx, "count", 2);
            Ok(())
        });
        sim.run().expect("run");
        let vcd = tracer.to_vcd();
        assert!(vcd.starts_with("$timescale 1ps $end"));
        assert!(vcd.contains("$var wire 64 ! count $end"));
        assert!(vcd.contains("$var wire 64 \" state $end"));
        assert!(vcd.contains("$enddefinitions $end"));
        assert!(vcd.contains("#0\n"));
        assert!(vcd.contains("#3000\n"), "3 ns = 3000 ps");
        assert!(vcd.contains("b1 !"));
        assert!(vcd.contains("b10 !"), "2 in binary");
        assert!(vcd.contains("sDECODE \""));
    }

    #[test]
    fn vcd_timestamps_are_not_repeated() {
        let tracer = Tracer::new();
        let mut sim = Simulation::new();
        let t = tracer.clone();
        sim.spawn_process("p", move |ctx| {
            t.record(ctx, "a", 1);
            t.record(ctx, "b", 2); // same instant: one #0 line
            ctx.wait(SimTime::ns(1))?;
            t.record(ctx, "a", 3);
            Ok(())
        });
        sim.run().expect("run");
        let vcd = tracer.to_vcd();
        assert_eq!(vcd.matches("#0\n").count(), 1);
        assert_eq!(vcd.matches("#1000\n").count(), 1);
    }
}
