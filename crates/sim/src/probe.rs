//! Unified observability: counters, gauges and sim-time histograms
//! behind one [`MetricsRegistry`], plus the scheduler probe that feeds
//! it.
//!
//! The paper's methodology depends on every refinement layer staying
//! *observable* — EET occupancy at the Application Layer, bus grants
//! and arbitration waits at the VTA layer. This module is the single
//! sink those numbers flow into: model code grabs cheap handles
//! ([`Counter`], [`Gauge`], [`Histogram`]) and the registry renders a
//! deterministic JSON snapshot in the repository's `BENCH_*.json`
//! style.
//!
//! Cost discipline: a handle is one `Arc`'d atomic; incrementing it is
//! a relaxed atomic add. Components that are not handed a registry (or
//! a probe) pay a single `Option` check — the decoder hot path and the
//! scheduler stay at full speed when nothing is attached.
//!
//! ```
//! use osss_sim::probe::MetricsRegistry;
//! use osss_sim::SimTime;
//!
//! let reg = MetricsRegistry::new();
//! let tiles = reg.counter("decode.tiles");
//! tiles.add(16);
//! reg.observe("decode.tile_time", SimTime::ms(180));
//! assert!(reg.to_json().contains("\"decode.tiles\": 16"));
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::time::SimTime;

/// Number of log2 picosecond buckets: covers one picosecond up to
/// about 13 simulated days, which bounds every model in this workspace.
const HIST_BUCKETS: usize = 51;

/// A monotonically increasing event count.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (queue depths, credits, balances).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `d` (may be negative) and returns the new value.
    pub fn add(&self, d: i64) -> i64 {
        self.0.fetch_add(d, Ordering::Relaxed) + d
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A histogram of simulated durations with logarithmic (power-of-two
/// picosecond) buckets — wait times, invoke latencies, transfer times.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TimeHistogram {
    count: u64,
    total: SimTime,
    max: SimTime,
    buckets: [u64; HIST_BUCKETS],
}

impl Default for TimeHistogram {
    fn default() -> Self {
        TimeHistogram {
            count: 0,
            total: SimTime::ZERO,
            max: SimTime::ZERO,
            buckets: [0; HIST_BUCKETS],
        }
    }
}

impl TimeHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_of(t: SimTime) -> usize {
        // bucket b holds durations in [2^(b-1), 2^b) ps; bucket 0 holds 0.
        (64 - t.as_ps().leading_zeros() as usize).min(HIST_BUCKETS - 1)
    }

    /// Records one duration.
    pub fn observe(&mut self, t: SimTime) {
        self.count = self.count.saturating_add(1);
        self.total = self.total.saturating_add(t);
        self.max = self.max.max(t);
        self.buckets[Self::bucket_of(t)] += 1;
    }

    /// Number of recorded durations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded durations.
    pub fn total(&self) -> SimTime {
        self.total
    }

    /// Largest recorded duration.
    pub fn max(&self) -> SimTime {
        self.max
    }

    /// Mean recorded duration (zero when empty — a degenerate run must
    /// render as zero, not divide by zero).
    pub fn mean(&self) -> SimTime {
        self.total
            .as_ps()
            .checked_div(self.count)
            .map_or(SimTime::ZERO, SimTime::ps)
    }

    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &TimeHistogram) {
        self.count = self.count.saturating_add(other.count);
        self.total = self.total.saturating_add(other.total);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a = a.saturating_add(*b);
        }
    }
}

/// Shared handle to a registry-owned [`TimeHistogram`].
#[derive(Clone, Debug, Default)]
pub struct Histogram(Arc<Mutex<TimeHistogram>>);

impl Histogram {
    /// Records one duration.
    pub fn observe(&self, t: SimTime) {
        self.0.lock().observe(t);
    }

    /// A copy of the current distribution.
    pub fn snapshot(&self) -> TimeHistogram {
        self.0.lock().clone()
    }
}

#[derive(Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Hist(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Hist(_) => "histogram",
        }
    }
}

/// A point-in-time copy of every metric, keyed by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram distributions.
    pub histograms: BTreeMap<String, TimeHistogram>,
}

/// The unified metrics sink: named counters, gauges and sim-time
/// histograms with get-or-create handle access. Cloning shares the
/// underlying store, so one registry can be threaded through the
/// scheduler, the transport and the decoder of a single run.
///
/// # Panics
///
/// Requesting an existing name as a *different* metric kind panics —
/// that is a programming error, not a runtime condition.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<BTreeMap<String, Metric>>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("metrics", &self.inner.lock().len())
            .finish()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn entry<T: Clone>(
        &self,
        name: &str,
        make: impl FnOnce() -> Metric,
        pick: impl Fn(&Metric) -> Option<T>,
    ) -> T {
        let mut map = self.inner.lock();
        let m = map.entry(name.to_string()).or_insert_with(make);
        match pick(m) {
            Some(t) => t,
            None => panic!("metric `{name}` already registered as a {}", m.kind()),
        }
    }

    /// The counter named `name` (created on first use).
    pub fn counter(&self, name: &str) -> Counter {
        self.entry(
            name,
            || Metric::Counter(Counter::default()),
            |m| match m {
                Metric::Counter(c) => Some(c.clone()),
                _ => None,
            },
        )
    }

    /// The gauge named `name` (created on first use).
    pub fn gauge(&self, name: &str) -> Gauge {
        self.entry(
            name,
            || Metric::Gauge(Gauge::default()),
            |m| match m {
                Metric::Gauge(g) => Some(g.clone()),
                _ => None,
            },
        )
    }

    /// The histogram named `name` (created on first use).
    pub fn histogram(&self, name: &str) -> Histogram {
        self.entry(
            name,
            || Metric::Hist(Histogram::default()),
            |m| match m {
                Metric::Hist(h) => Some(h.clone()),
                _ => None,
            },
        )
    }

    /// Adds `n` to the counter named `name` — the one-shot form for
    /// bulk exports of pre-aggregated stats structs.
    pub fn add_counter(&self, name: &str, n: u64) {
        self.counter(name).add(n);
    }

    /// Sets the gauge named `name`.
    pub fn set_gauge(&self, name: &str, v: i64) {
        self.gauge(name).set(v);
    }

    /// Records `t` into the histogram named `name`.
    pub fn observe(&self, name: &str, t: SimTime) {
        self.histogram(name).observe(t);
    }

    /// Whether no metric has been registered.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// A point-in-time copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let map = self.inner.lock();
        let mut snap = MetricsSnapshot::default();
        for (name, m) in map.iter() {
            match m {
                Metric::Counter(c) => {
                    snap.counters.insert(name.clone(), c.get());
                }
                Metric::Gauge(g) => {
                    snap.gauges.insert(name.clone(), g.get());
                }
                Metric::Hist(h) => {
                    snap.histograms.insert(name.clone(), h.snapshot());
                }
            }
        }
        snap
    }

    /// Renders the snapshot as deterministic JSON (sorted keys, stable
    /// field order) in the style of the repository's `BENCH_*.json`
    /// trajectory files.
    pub fn to_json(&self) -> String {
        let snap = self.snapshot();
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"counters\": {{");
        write_map(&mut out, &snap.counters, |v| v.to_string());
        let _ = writeln!(out, "  }},");
        let _ = writeln!(out, "  \"gauges\": {{");
        write_map(&mut out, &snap.gauges, |v| v.to_string());
        let _ = writeln!(out, "  }},");
        let _ = writeln!(out, "  \"histograms\": {{");
        write_map(&mut out, &snap.histograms, |h| {
            format!(
                "{{ \"count\": {}, \"total_ps\": {}, \"mean_ps\": {}, \"max_ps\": {} }}",
                h.count(),
                h.total().as_ps(),
                h.mean().as_ps(),
                h.max().as_ps()
            )
        });
        let _ = writeln!(out, "  }}");
        out.push_str("}\n");
        out
    }
}

fn write_map<V>(out: &mut String, map: &BTreeMap<String, V>, render: impl Fn(&V) -> String) {
    let last = map.len().saturating_sub(1);
    for (i, (k, v)) in map.iter().enumerate() {
        let comma = if i == last { "" } else { "," };
        let _ = writeln!(out, "    \"{k}\": {}{comma}", render(v));
    }
}

// ---------------------------------------------------------------------------
// Scheduler probe
// ---------------------------------------------------------------------------

/// Raw per-simulation scheduler instrumentation, collected inside the
/// kernel lock. Enabled by [`crate::Simulation::enable_sched_probe`];
/// when absent the scheduler pays one `Option` check per site.
#[derive(Debug, Default)]
pub(crate) struct SchedProbe {
    pub(crate) activations: Vec<u64>,
    pub(crate) wakeups: Vec<u64>,
    pub(crate) wait_time: Vec<SimTime>,
    pub(crate) wait_since: Vec<Option<SimTime>>,
    pub(crate) depth_max: usize,
    pub(crate) depth_sum: u64,
    pub(crate) depth_samples: u64,
    pub(crate) wait_hist: TimeHistogram,
}

impl SchedProbe {
    fn ensure(&mut self, n: usize) {
        if self.activations.len() <= n {
            self.activations.resize(n + 1, 0);
            self.wakeups.resize(n + 1, 0);
            self.wait_time.resize(n + 1, SimTime::ZERO);
            self.wait_since.resize(n + 1, None);
        }
    }

    pub(crate) fn on_activation(&mut self, pid: usize) {
        self.ensure(pid);
        self.activations[pid] += 1;
    }

    pub(crate) fn on_begin_wait(&mut self, pid: usize, now: SimTime) {
        self.ensure(pid);
        self.wait_since[pid] = Some(now);
    }

    pub(crate) fn on_wake(&mut self, pid: usize, now: SimTime) {
        self.ensure(pid);
        self.wakeups[pid] += 1;
        if let Some(since) = self.wait_since[pid].take() {
            let waited = now.checked_sub(since).unwrap_or(SimTime::ZERO);
            self.wait_time[pid] = self.wait_time[pid].saturating_add(waited);
            self.wait_hist.observe(waited);
        }
    }

    pub(crate) fn sample_depth(&mut self, depth: usize) {
        self.depth_max = self.depth_max.max(depth);
        self.depth_sum = self.depth_sum.saturating_add(depth as u64);
        self.depth_samples += 1;
    }
}

/// Per-process scheduler measurements.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProcSched {
    /// Process name.
    pub name: String,
    /// Times the scheduler handed the process a time slice.
    pub activations: u64,
    /// Completed wakeups from a blocking wait.
    pub wakeups: u64,
    /// Total simulated time spent blocked (completed waits only).
    pub wait_time: SimTime,
}

/// Snapshot of the scheduler probe after (or during) a run.
#[derive(Debug, Clone, Default)]
pub struct SchedSnapshot {
    /// One entry per spawned process, in spawn order.
    pub procs: Vec<ProcSched>,
    /// Largest runnable-queue depth observed.
    pub runnable_depth_max: usize,
    /// Mean runnable-queue depth over all samples (zero when no sample
    /// was taken).
    pub runnable_depth_avg: f64,
    /// Distribution of completed wait durations across all processes.
    pub wait_hist: TimeHistogram,
}

impl SchedSnapshot {
    /// Exports the snapshot into `reg` under the `sched.` prefix.
    pub fn export_to(&self, reg: &MetricsRegistry) {
        for p in &self.procs {
            reg.add_counter(&format!("sched.{}.activations", p.name), p.activations);
            reg.add_counter(&format!("sched.{}.wakeups", p.name), p.wakeups);
            reg.add_counter(&format!("sched.{}.wait_ps", p.name), p.wait_time.as_ps());
        }
        reg.set_gauge("sched.runnable_depth_max", self.runnable_depth_max as i64);
        reg.set_gauge(
            "sched.runnable_depth_avg_x1000",
            (self.runnable_depth_avg * 1000.0) as i64,
        );
        let h = reg.histogram("sched.wait");
        let mut merged = h.snapshot();
        merged.merge(&self.wait_hist);
        // Histogram handles have no bulk-store; re-observing would skew
        // the buckets, so replace through a fresh merge each export.
        *h.0.lock() = merged;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_gauge_histogram_roundtrip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("c");
        c.inc();
        c.add(4);
        assert_eq!(reg.counter("c").get(), 5, "handle is shared by name");
        let g = reg.gauge("g");
        g.set(7);
        assert_eq!(g.add(-10), -3);
        reg.observe("h", SimTime::ns(10));
        reg.observe("h", SimTime::ns(30));
        let h = reg.histogram("h").snapshot();
        assert_eq!(h.count(), 2);
        assert_eq!(h.total(), SimTime::ns(40));
        assert_eq!(h.mean(), SimTime::ns(20));
        assert_eq!(h.max(), SimTime::ns(30));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn empty_histogram_mean_is_zero_not_nan() {
        let h = TimeHistogram::new();
        assert_eq!(h.mean(), SimTime::ZERO);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn json_is_deterministic_and_sorted() {
        let reg = MetricsRegistry::new();
        reg.add_counter("b.second", 2);
        reg.add_counter("a.first", 1);
        reg.set_gauge("depth", -4);
        reg.observe("wait", SimTime::us(3));
        let json = reg.to_json();
        assert_eq!(json, reg.to_json(), "snapshot must be stable");
        let a = json.find("a.first").expect("a.first present");
        let b = json.find("b.second").expect("b.second present");
        assert!(a < b, "keys must be sorted");
        assert!(json.contains("\"depth\": -4"));
        assert!(json.contains("\"count\": 1"));
        // Shape check: the BENCH_* style — one top-level object, three
        // fixed sections.
        assert!(json.starts_with("{\n"));
        for section in ["\"counters\"", "\"gauges\"", "\"histograms\""] {
            assert!(json.contains(section), "{section} missing");
        }
    }

    #[test]
    fn histogram_merge_accumulates() {
        let mut a = TimeHistogram::new();
        a.observe(SimTime::ns(1));
        let mut b = TimeHistogram::new();
        b.observe(SimTime::ms(1));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), SimTime::ms(1));
    }
}
