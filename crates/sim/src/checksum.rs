//! Shared checksums for framed transports.
//!
//! The reliable-RMI layer (`osss-vta`) and the native network decode
//! server (`jpeg2000::net`) both frame their payloads with the same
//! CRC-32 trailer; this module is the single implementation both link
//! against, so the simulated transport and the real wire protocol are
//! checked by literally the same code — the refinement story the paper
//! tells for communication, applied to the checksum itself.

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) over `data`.
///
/// This is the checksum both the reliable-RMI frame trailer and the
/// network decode protocol carry; the receiver recomputes it over the
/// payload and rejects the frame on mismatch. Same algorithm as
/// Ethernet/zip, so `crc32(b"123456789") == 0xCBF4_3926`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_detects_any_single_bit_flip() {
        let data: Vec<u8> = (0u32..64).map(|i| (i * 37 % 251) as u8).collect();
        let good = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut bad = data.clone();
                bad[byte] ^= 1 << bit;
                assert_ne!(crc32(&bad), good, "flip at {byte}.{bit} undetected");
            }
        }
    }
}
