//! Error types for simulation construction and execution.

use std::error::Error;
use std::fmt;

/// Result alias used by all fallible simulation operations.
pub type SimResult<T> = Result<T, SimError>;

/// Errors produced by the simulation kernel and by process bodies.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The simulation is shutting down and the process was asked to
    /// terminate. Process bodies should propagate this with `?`.
    Terminated,
    /// A process panicked; carries the process name and panic payload text.
    ProcessPanic {
        /// Name of the process that panicked.
        process: String,
        /// Stringified panic payload.
        message: String,
    },
    /// A process reported a modelling error (domain-specific failure).
    Model(String),
    /// The kernel detected that every process is blocked on events that can
    /// no longer be notified and no timed activity remains, while at least
    /// one process expected progress (only reported by [`crate::Simulation::run`]
    /// when configured to treat quiescence as deadlock).
    Deadlock {
        /// Names of the processes still blocked at the end of simulation.
        blocked: Vec<String>,
    },
}

impl SimError {
    /// Convenience constructor for modelling errors.
    pub fn model(msg: impl Into<String>) -> Self {
        SimError::Model(msg.into())
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Terminated => write!(f, "simulation terminated"),
            SimError::ProcessPanic { process, message } => {
                write!(f, "process `{process}` panicked: {message}")
            }
            SimError::Model(msg) => write!(f, "model error: {msg}"),
            SimError::Deadlock { blocked } => {
                write!(
                    f,
                    "deadlock: processes still blocked: {}",
                    blocked.join(", ")
                )
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(SimError::Terminated.to_string(), "simulation terminated");
        let e = SimError::ProcessPanic {
            process: "p0".into(),
            message: "boom".into(),
        };
        assert_eq!(e.to_string(), "process `p0` panicked: boom");
        assert_eq!(
            SimError::model("bad tile").to_string(),
            "model error: bad tile"
        );
        let d = SimError::Deadlock {
            blocked: vec!["a".into(), "b".into()],
        };
        assert!(d.to_string().contains("a, b"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
