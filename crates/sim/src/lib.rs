//! # osss-sim — a deterministic discrete-event simulation kernel
//!
//! This crate is the substrate the OSSS methodology runs on. It plays the
//! role the OSCI SystemC kernel plays for the original OSSS library:
//! cooperative processes, events with delta/timed notification, signals
//! with update semantics, and blocking primitives (FIFOs, mutexes,
//! semaphores) — all with a deterministic scheduling order.
//!
//! Processes are OS threads driven **cooperatively**: exactly one process
//! runs at any instant, and control returns to the scheduler whenever a
//! process calls one of the [`Context`] wait operations. This gives the
//! blocking-method-call semantics OSSS shared objects require without any
//! data races (the kernel and the running process strictly alternate).
//!
//! ## Example
//!
//! ```
//! use osss_sim::{Simulation, SimTime};
//!
//! # fn main() -> Result<(), osss_sim::SimError> {
//! let mut sim = Simulation::new();
//! let ping = sim.event("ping");
//!
//! let ping2 = ping.clone();
//! sim.spawn_process("producer", move |ctx| {
//!     ctx.wait(SimTime::ns(10))?;
//!     ctx.notify(&ping2);
//!     Ok(())
//! });
//! sim.spawn_process("consumer", move |ctx| {
//!     ctx.wait_event(&ping)?;
//!     assert_eq!(ctx.now(), SimTime::ns(10));
//!     Ok(())
//! });
//!
//! let report = sim.run()?;
//! assert_eq!(report.end_time, SimTime::ns(10));
//! # Ok(())
//! # }
//! ```

pub mod checksum;
mod context;
mod error;
mod event;
mod kernel;
pub mod prim;
pub mod probe;
mod time;
pub mod trace;
pub mod vcd;

pub use context::Context;
pub use error::{SimError, SimResult};
pub use event::{Event, EventId};
pub use kernel::{ProcId, RunLimit, SimReport, Simulation};
pub use time::{Frequency, SimTime};
