//! The discrete-event scheduler and its process bookkeeping.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::context::Context;
use crate::error::{SimError, SimResult};
use crate::event::{Event, EventId};
use crate::probe::{ProcSched, SchedProbe, SchedSnapshot};
use crate::time::SimTime;

/// Identifier of a process inside one simulation.
///
/// Shared-object arbiters use it as the *client identity* of a caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcId(pub(crate) usize);

impl ProcId {
    /// Builds a process id from its raw index. Intended for tests of
    /// arbitration policies; ids obtained this way only match real
    /// processes of the simulation they were copied from.
    pub fn from_raw(index: usize) -> Self {
        ProcId(index)
    }

    /// The raw index of this process inside its simulation.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "proc#{}", self.0)
    }
}

/// How long [`Simulation::run_limit`] should keep going.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunLimit {
    /// Run until no timed or delta activity remains.
    Exhausted,
    /// Run until simulated time would exceed the given instant.
    Until(SimTime),
}

/// Boxed process body.
pub(crate) type ProcessFn = Box<dyn FnOnce(&Context) -> SimResult<()> + Send + 'static>;

/// Kernel → process command.
pub(crate) enum Resume {
    Go,
    Terminate,
}

/// Process → kernel handoff.
pub(crate) enum YieldMsg {
    /// The process registered a wait and handed control back.
    Waiting,
    /// The process body returned (or panicked).
    Finished(SimResult<()>),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Wake {
    Proc(ProcId, u64),
    Event(EventId),
}

#[derive(Debug)]
struct TimedEntry {
    time: SimTime,
    seq: u64,
    wake: Wake,
}

impl PartialEq for TimedEntry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for TimedEntry {}
impl PartialOrd for TimedEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimedEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProcStatus {
    Runnable,
    Waiting,
    Finished,
}

struct ProcRec {
    name: Arc<str>,
    status: ProcStatus,
    /// Generation counter: each blocking wait bumps it, making wakeups from
    /// cancelled/stale sources (lost races of `wait_any`, expired timeouts)
    /// no-ops.
    wait_gen: u64,
    /// Which event woke the process, if any (None for timed wakeups).
    wake_reason: Option<EventId>,
    /// Events this process is currently registered on (for cleanup).
    registered: Vec<EventId>,
}

struct EventRec {
    name: String,
    waiters: Vec<(ProcId, u64)>,
}

struct PendingSpawn {
    name: String,
    body: ProcessFn,
}

/// Hook run during the update phase (used by [`crate::prim::Signal`]).
pub(crate) trait UpdateHook: Send + Sync {
    /// Applies the pending value; returns the event to delta-notify if the
    /// observable value changed.
    fn apply(&self) -> Option<EventId>;
}

pub(crate) struct SimState {
    pub(crate) now: SimTime,
    seq: u64,
    timed: BinaryHeap<Reverse<TimedEntry>>,
    runnable: VecDeque<ProcId>,
    procs: Vec<ProcRec>,
    events: Vec<EventRec>,
    pending_delta: Vec<EventId>,
    pending_updates: Vec<Arc<dyn UpdateHook>>,
    pending_spawns: Vec<PendingSpawn>,
    pub(crate) ended: bool,
    deltas_total: u64,
    deltas_this_step: u64,
    // Scheduler instrumentation; `None` (the default) keeps every hook
    // site down to a single branch.
    probe: Option<SchedProbe>,
}

impl SimState {
    fn new() -> Self {
        SimState {
            now: SimTime::ZERO,
            seq: 0,
            timed: BinaryHeap::new(),
            runnable: VecDeque::new(),
            procs: Vec::new(),
            events: Vec::new(),
            pending_delta: Vec::new(),
            pending_updates: Vec::new(),
            pending_spawns: Vec::new(),
            ended: false,
            deltas_total: 0,
            deltas_this_step: 0,
            probe: None,
        }
    }

    fn push_timed(&mut self, time: SimTime, wake: Wake) {
        let seq = self.seq;
        self.seq += 1;
        self.timed.push(Reverse(TimedEntry { time, seq, wake }));
    }

    pub(crate) fn new_event(&mut self, name: &str) -> EventId {
        let id = EventId(self.events.len());
        self.events.push(EventRec {
            name: name.to_string(),
            waiters: Vec::new(),
        });
        id
    }

    /// Registers the calling process as waiting on `eid`.
    pub(crate) fn register_waiter(&mut self, pid: ProcId, gen: u64, eid: EventId) {
        self.events[eid.0].waiters.push((pid, gen));
        self.procs[pid.0].registered.push(eid);
    }

    /// Marks a process as blocked and returns the fresh wait generation.
    pub(crate) fn begin_wait(&mut self, pid: ProcId) -> u64 {
        let now = self.now;
        let p = &mut self.procs[pid.0];
        p.wait_gen += 1;
        p.status = ProcStatus::Waiting;
        p.wake_reason = None;
        let gen = p.wait_gen;
        if let Some(pr) = &mut self.probe {
            pr.on_begin_wait(pid.0, now);
        }
        gen
    }

    /// Schedules a timed wakeup for a blocked process.
    pub(crate) fn schedule_proc(&mut self, pid: ProcId, gen: u64, at: SimTime) {
        self.push_timed(at, Wake::Proc(pid, gen));
    }

    /// Schedules a timed notification of an event.
    pub(crate) fn schedule_event(&mut self, eid: EventId, at: SimTime) {
        self.push_timed(at, Wake::Event(eid));
    }

    /// Queues a delta notification of an event.
    pub(crate) fn notify_delta(&mut self, eid: EventId) {
        self.pending_delta.push(eid);
    }

    /// Immediately wakes all current waiters of `eid`.
    pub(crate) fn fire_event(&mut self, eid: EventId) {
        let waiters = std::mem::take(&mut self.events[eid.0].waiters);
        for (pid, gen) in waiters {
            self.wake_proc(pid, gen, Some(eid));
        }
    }

    fn wake_proc(&mut self, pid: ProcId, gen: u64, reason: Option<EventId>) {
        let p = &mut self.procs[pid.0];
        if p.status != ProcStatus::Waiting || p.wait_gen != gen {
            return; // stale wakeup
        }
        p.status = ProcStatus::Runnable;
        p.wake_reason = reason;
        // Drop stale registrations on the other events of a `wait_any`.
        let registered = std::mem::take(&mut p.registered);
        for eid in registered {
            self.events[eid.0]
                .waiters
                .retain(|&(wp, wg)| !(wp == pid && wg == gen));
        }
        self.runnable.push_back(pid);
        let depth = self.runnable.len();
        if let Some(pr) = &mut self.probe {
            pr.on_wake(pid.0, self.now);
            pr.sample_depth(depth);
        }
    }

    pub(crate) fn register_update(&mut self, hook: Arc<dyn UpdateHook>) {
        self.pending_updates.push(hook);
    }

    pub(crate) fn queue_spawn(&mut self, name: String, body: ProcessFn) {
        self.pending_spawns.push(PendingSpawn { name, body });
    }

    pub(crate) fn wake_reason(&self, pid: ProcId) -> Option<EventId> {
        self.procs[pid.0].wake_reason
    }
}

/// State shared between the kernel and every process context.
pub(crate) struct Shared {
    pub(crate) state: Mutex<SimState>,
}

impl Shared {
    pub(crate) fn event_name(&self, id: EventId) -> String {
        self.state.lock().events[id.0].name.clone()
    }
}

struct ProcSlot {
    resume_tx: Sender<Resume>,
    yield_rx: Receiver<YieldMsg>,
    join: Option<JoinHandle<()>>,
}

/// Summary returned by a simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimReport {
    /// Simulated time at which the run stopped.
    pub end_time: SimTime,
    /// Total number of delta cycles executed.
    pub delta_cycles: u64,
    /// Number of processes whose bodies returned.
    pub finished: usize,
    /// Names of the processes still blocked when the run stopped.
    pub blocked: Vec<String>,
}

impl SimReport {
    /// Errors if any process is still blocked — i.e. the model quiesced
    /// without every process reaching the end of its body.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Deadlock`] listing the blocked process names.
    pub fn expect_all_finished(&self) -> SimResult<()> {
        if self.blocked.is_empty() {
            Ok(())
        } else {
            Err(SimError::Deadlock {
                blocked: self.blocked.clone(),
            })
        }
    }
}

/// A discrete-event simulation: a set of processes, events and primitives
/// plus the scheduler that drives them.
///
/// See the [crate-level documentation](crate) for an example.
pub struct Simulation {
    shared: Arc<Shared>,
    slots: Vec<ProcSlot>,
    max_deltas_per_step: u64,
}

impl Default for Simulation {
    fn default() -> Self {
        Self::new()
    }
}

impl Simulation {
    /// Creates an empty simulation.
    pub fn new() -> Self {
        Simulation {
            shared: Arc::new(Shared {
                state: Mutex::new(SimState::new()),
            }),
            slots: Vec::new(),
            max_deltas_per_step: 1_000_000,
        }
    }

    /// Caps runaway delta loops; exceeding the cap at a single time step
    /// aborts the run with a model error. Defaults to one million.
    pub fn set_max_deltas_per_step(&mut self, max: u64) {
        self.max_deltas_per_step = max;
    }

    /// Creates a named event.
    pub fn event(&mut self, name: &str) -> Event {
        let id = self.shared.state.lock().new_event(name);
        Event {
            id,
            shared: Arc::clone(&self.shared),
        }
    }

    /// Registers a process; it becomes runnable at time zero.
    ///
    /// The body receives the process's [`Context`] and should propagate
    /// [`SimError::Terminated`] from wait operations with `?`.
    pub fn spawn_process<F>(&mut self, name: &str, body: F) -> ProcId
    where
        F: FnOnce(&Context) -> SimResult<()> + Send + 'static,
    {
        self.spawn_slot(name.to_string(), Box::new(body))
    }

    fn spawn_slot(&mut self, name: String, body: ProcessFn) -> ProcId {
        let pid = ProcId(self.slots.len());
        let name_arc: Arc<str> = Arc::from(name.as_str());
        {
            let mut st = self.shared.state.lock();
            debug_assert_eq!(st.procs.len(), pid.0);
            st.procs.push(ProcRec {
                name: Arc::clone(&name_arc),
                status: ProcStatus::Runnable,
                wait_gen: 0,
                wake_reason: None,
                registered: Vec::new(),
            });
            st.runnable.push_back(pid);
        }
        let (resume_tx, resume_rx) = bounded::<Resume>(1);
        let (yield_tx, yield_rx) = bounded::<YieldMsg>(1);
        let ctx = Context::new(
            pid,
            Arc::clone(&name_arc),
            Arc::clone(&self.shared),
            resume_rx,
            yield_tx.clone(),
        );
        let thread_name = format!("sim:{name}");
        let join = std::thread::Builder::new()
            .name(thread_name)
            .spawn(move || {
                // Wait for the kernel to hand us the first time slice.
                match ctx.recv_resume() {
                    Ok(Resume::Go) => {
                        let pname = ctx.name().to_string();
                        let result = catch_unwind(AssertUnwindSafe(|| body(&ctx)));
                        let msg = match result {
                            Ok(r) => YieldMsg::Finished(r),
                            Err(payload) => YieldMsg::Finished(Err(SimError::ProcessPanic {
                                process: pname,
                                message: panic_message(payload),
                            })),
                        };
                        let _ = yield_tx.send(msg);
                    }
                    Ok(Resume::Terminate) | Err(_) => {
                        let _ = yield_tx.send(YieldMsg::Finished(Ok(())));
                    }
                }
            })
            .expect("spawn simulation process thread");
        self.slots.push(ProcSlot {
            resume_tx,
            yield_rx,
            join: Some(join),
        });
        pid
    }

    /// Runs until no activity remains. See [`Simulation::run_limit`].
    ///
    /// # Errors
    ///
    /// Propagates the first process panic or model error.
    pub fn run(&mut self) -> SimResult<SimReport> {
        self.run_limit(RunLimit::Exhausted)
    }

    /// Runs until simulated time would pass `t`. The simulation can be
    /// resumed by calling a run method again.
    ///
    /// # Errors
    ///
    /// Propagates the first process panic or model error.
    pub fn run_until(&mut self, t: SimTime) -> SimResult<SimReport> {
        self.run_limit(RunLimit::Until(t))
    }

    /// Drives the scheduler: evaluation phase (run every runnable process to
    /// its next wait), update phase (apply signal writes), delta-notification
    /// phase, then time advance.
    ///
    /// # Errors
    ///
    /// Propagates the first process panic or model error.
    pub fn run_limit(&mut self, limit: RunLimit) -> SimResult<SimReport> {
        loop {
            // Evaluation phase.
            loop {
                let next = {
                    let mut st = self.shared.state.lock();
                    st.runnable.pop_front()
                };
                let Some(pid) = next else { break };
                {
                    let mut st = self.shared.state.lock();
                    if st.procs[pid.0].status != ProcStatus::Runnable {
                        continue;
                    }
                    if let Some(pr) = &mut st.probe {
                        pr.on_activation(pid.0);
                    }
                }
                self.resume(pid)?;
            }

            // Update phase.
            let hooks = {
                let mut st = self.shared.state.lock();
                std::mem::take(&mut st.pending_updates)
            };
            let mut changed = Vec::new();
            for hook in hooks {
                if let Some(eid) = hook.apply() {
                    changed.push(eid);
                }
            }

            // Delta-notification phase.
            {
                let mut st = self.shared.state.lock();
                let mut pending = std::mem::take(&mut st.pending_delta);
                pending.extend(changed);
                for eid in pending {
                    st.fire_event(eid);
                }
                if !st.runnable.is_empty() {
                    st.deltas_total += 1;
                    st.deltas_this_step += 1;
                    if st.deltas_this_step > self.max_deltas_per_step {
                        return Err(SimError::model(format!(
                            "delta-cycle overflow at {} (> {} deltas in one step)",
                            st.now, self.max_deltas_per_step
                        )));
                    }
                    continue;
                }
            }

            // Timed phase.
            let advanced = {
                let mut st = self.shared.state.lock();
                match st.timed.peek() {
                    None => false,
                    Some(Reverse(head)) => {
                        let t = head.time;
                        if let RunLimit::Until(stop) = limit {
                            if t > stop {
                                st.now = stop;
                                false
                            } else {
                                Self::advance_to(&mut st, t);
                                true
                            }
                        } else {
                            Self::advance_to(&mut st, t);
                            true
                        }
                    }
                }
            };
            if !advanced {
                break;
            }
        }
        Ok(self.report())
    }

    /// Advances time to `t` and delivers every wakeup scheduled for that
    /// instant: timed *event* notifications first, then timed *process*
    /// wakeups, each group in scheduling order.
    ///
    /// The cross-group ordering is deliberate and pinned: when an event
    /// notification and a process deadline land on the same instant —
    /// the exact-tie case of [`crate::Context::wait_event_timeout`] —
    /// the event fires first, the waiter wakes with an event reason, and
    /// its now-stale deadline wakeup is dropped by the generation check.
    /// Without this, the winner would depend on the order in which the
    /// two entries were pushed onto the timed heap.
    fn advance_to(st: &mut SimState, t: SimTime) {
        st.now = t;
        st.deltas_this_step = 0;
        // No process runs while draining the heap, so firing events here
        // cannot schedule new entries at `t`.
        let mut procs = Vec::new();
        while let Some(Reverse(head)) = st.timed.peek() {
            if head.time != t {
                break;
            }
            let Reverse(entry) = st.timed.pop().expect("peeked entry");
            match entry.wake {
                Wake::Proc(pid, gen) => procs.push((pid, gen)),
                Wake::Event(eid) => st.fire_event(eid),
            }
        }
        for (pid, gen) in procs {
            st.wake_proc(pid, gen, None);
        }
        let depth = st.runnable.len();
        if let Some(pr) = &mut st.probe {
            pr.sample_depth(depth);
        }
    }

    fn resume(&mut self, pid: ProcId) -> SimResult<()> {
        let slot = &self.slots[pid.0];
        slot.resume_tx
            .send(Resume::Go)
            .expect("process thread receiving");
        let msg = slot
            .yield_rx
            .recv()
            .expect("process thread yields or finishes");
        match msg {
            YieldMsg::Waiting => {}
            YieldMsg::Finished(result) => {
                {
                    let mut st = self.shared.state.lock();
                    st.procs[pid.0].status = ProcStatus::Finished;
                }
                if let Some(handle) = self.slots[pid.0].join.take() {
                    let _ = handle.join();
                }
                match result {
                    Ok(()) | Err(SimError::Terminated) => {}
                    Err(e) => return Err(e),
                }
            }
        }
        // Materialise processes spawned by the step we just ran.
        let spawns = {
            let mut st = self.shared.state.lock();
            std::mem::take(&mut st.pending_spawns)
        };
        for s in spawns {
            self.spawn_slot(s.name, s.body);
        }
        Ok(())
    }

    fn report(&self) -> SimReport {
        let st = self.shared.state.lock();
        let mut finished = 0;
        let mut blocked = Vec::new();
        for p in &st.procs {
            match p.status {
                ProcStatus::Finished => finished += 1,
                ProcStatus::Waiting | ProcStatus::Runnable => {
                    blocked.push(p.name.to_string());
                }
            }
        }
        SimReport {
            end_time: st.now,
            delta_cycles: st.deltas_total,
            finished,
            blocked,
        }
    }

    /// Current simulated time (between runs).
    pub fn now(&self) -> SimTime {
        self.shared.state.lock().now
    }

    /// Turns on scheduler instrumentation (per-process activations,
    /// wakeups and wait time, runnable-queue depth). Idempotent; call
    /// before running. Without this call the scheduler pays a single
    /// `Option` check per hook site and collects nothing.
    pub fn enable_sched_probe(&mut self) {
        let mut st = self.shared.state.lock();
        if st.probe.is_none() {
            st.probe = Some(SchedProbe::default());
        }
    }

    /// Snapshot of the scheduler probe, or `None` if
    /// [`Self::enable_sched_probe`] was never called. Wait time counts
    /// completed waits only; a process still blocked at snapshot time
    /// contributes its past waits.
    pub fn sched_snapshot(&self) -> Option<SchedSnapshot> {
        let st = self.shared.state.lock();
        let probe = st.probe.as_ref()?;
        let procs = st
            .procs
            .iter()
            .enumerate()
            .map(|(i, p)| ProcSched {
                name: p.name.to_string(),
                activations: probe.activations.get(i).copied().unwrap_or(0),
                wakeups: probe.wakeups.get(i).copied().unwrap_or(0),
                wait_time: probe.wait_time.get(i).copied().unwrap_or(SimTime::ZERO),
            })
            .collect();
        let runnable_depth_avg = if probe.depth_samples == 0 {
            0.0
        } else {
            probe.depth_sum as f64 / probe.depth_samples as f64
        };
        Some(SchedSnapshot {
            procs,
            runnable_depth_max: probe.depth_max,
            runnable_depth_avg,
            wait_hist: probe.wait_hist.clone(),
        })
    }

    fn terminate_all(&mut self) {
        {
            let mut st = self.shared.state.lock();
            st.ended = true;
        }
        for (idx, slot) in self.slots.iter_mut().enumerate() {
            let finished = {
                let st = self.shared.state.lock();
                st.procs[idx].status == ProcStatus::Finished
            };
            if finished {
                continue;
            }
            // Nudge the blocked process until its body unwinds.
            loop {
                if slot.resume_tx.send(Resume::Terminate).is_err() {
                    break;
                }
                match slot.yield_rx.recv() {
                    Ok(YieldMsg::Finished(_)) | Err(_) => break,
                    Ok(YieldMsg::Waiting) => continue,
                }
            }
            if let Some(handle) = slot.join.take() {
                let _ = handle.join();
            }
        }
    }
}

impl Drop for Simulation {
    fn drop(&mut self) {
        self.terminate_all();
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_simulation_finishes_at_zero() {
        let mut sim = Simulation::new();
        let report = sim.run().expect("run");
        assert_eq!(report.end_time, SimTime::ZERO);
        assert_eq!(report.finished, 0);
        assert!(report.blocked.is_empty());
    }

    #[test]
    fn single_process_advances_time() {
        let mut sim = Simulation::new();
        sim.spawn_process("p", |ctx| {
            ctx.wait(SimTime::ns(5))?;
            ctx.wait(SimTime::ns(7))?;
            assert_eq!(ctx.now(), SimTime::ns(12));
            Ok(())
        });
        let report = sim.run().expect("run");
        assert_eq!(report.end_time, SimTime::ns(12));
        assert_eq!(report.finished, 1);
    }

    #[test]
    fn processes_interleave_deterministically() {
        use std::sync::{Arc, Mutex};
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut sim = Simulation::new();
        for i in 0..3u32 {
            let log = Arc::clone(&log);
            sim.spawn_process(&format!("p{i}"), move |ctx| {
                for step in 0..2u32 {
                    log.lock().unwrap().push((i, step, ctx.now()));
                    ctx.wait(SimTime::ns(10))?;
                }
                Ok(())
            });
        }
        sim.run().expect("run");
        let log = log.lock().unwrap().clone();
        // Registration order at t=0, then the same order at t=10ns.
        let expected: Vec<(u32, u32, SimTime)> = vec![
            (0, 0, SimTime::ZERO),
            (1, 0, SimTime::ZERO),
            (2, 0, SimTime::ZERO),
            (0, 1, SimTime::ns(10)),
            (1, 1, SimTime::ns(10)),
            (2, 1, SimTime::ns(10)),
        ];
        assert_eq!(log, expected);
    }

    #[test]
    fn delta_notification_wakes_in_same_time() {
        let mut sim = Simulation::new();
        let ev = sim.event("e");
        let ev2 = ev.clone();
        sim.spawn_process("notifier", move |ctx| {
            ctx.wait(SimTime::ns(3))?;
            ctx.notify(&ev2);
            Ok(())
        });
        sim.spawn_process("waiter", move |ctx| {
            ctx.wait_event(&ev)?;
            assert_eq!(ctx.now(), SimTime::ns(3));
            Ok(())
        });
        let report = sim.run().expect("run");
        assert_eq!(report.finished, 2);
        assert!(report.blocked.is_empty());
    }

    #[test]
    fn timed_notification() {
        let mut sim = Simulation::new();
        let ev = sim.event("e");
        let ev2 = ev.clone();
        sim.spawn_process("notifier", move |ctx| {
            ctx.notify_after(&ev2, SimTime::us(2));
            Ok(())
        });
        sim.spawn_process("waiter", move |ctx| {
            ctx.wait_event(&ev)?;
            assert_eq!(ctx.now(), SimTime::us(2));
            Ok(())
        });
        assert_eq!(sim.run().expect("run").end_time, SimTime::us(2));
    }

    #[test]
    fn blocked_process_is_reported() {
        let mut sim = Simulation::new();
        let ev = sim.event("never");
        sim.spawn_process("stuck", move |ctx| {
            ctx.wait_event(&ev)?;
            Ok(())
        });
        let report = sim.run().expect("run");
        assert_eq!(report.blocked, vec!["stuck".to_string()]);
        assert!(report.expect_all_finished().is_err());
    }

    #[test]
    fn process_panic_is_reported_as_error() {
        let mut sim = Simulation::new();
        sim.spawn_process("bad", |_ctx| panic!("exploded"));
        let err = sim.run().expect_err("panic surfaces");
        match err {
            SimError::ProcessPanic { process, message } => {
                assert_eq!(process, "bad");
                assert!(message.contains("exploded"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn run_until_pauses_and_resumes() {
        let mut sim = Simulation::new();
        sim.spawn_process("p", |ctx| {
            ctx.wait(SimTime::ns(100))?;
            Ok(())
        });
        let r1 = sim.run_until(SimTime::ns(40)).expect("first leg");
        assert_eq!(r1.end_time, SimTime::ns(40));
        assert_eq!(r1.finished, 0);
        let r2 = sim.run().expect("second leg");
        assert_eq!(r2.end_time, SimTime::ns(100));
        assert_eq!(r2.finished, 1);
    }

    #[test]
    fn dynamic_spawn_runs_same_time() {
        let mut sim = Simulation::new();
        sim.spawn_process("parent", |ctx| {
            ctx.wait(SimTime::ns(10))?;
            let start = ctx.now();
            ctx.spawn("child", move |c| {
                assert_eq!(c.now(), start);
                c.wait(SimTime::ns(5))?;
                Ok(())
            });
            Ok(())
        });
        let report = sim.run().expect("run");
        assert_eq!(report.end_time, SimTime::ns(15));
        assert_eq!(report.finished, 2);
    }

    #[test]
    fn wait_any_returns_winning_event() {
        let mut sim = Simulation::new();
        let a = sim.event("a");
        let b = sim.event("b");
        let b2 = b.clone();
        sim.spawn_process("notifier", move |ctx| {
            ctx.notify_after(&b2, SimTime::ns(4));
            Ok(())
        });
        let a2 = a.clone();
        sim.spawn_process("waiter", move |ctx| {
            let winner = ctx.wait_any(&[&a2, &b])?;
            assert_eq!(winner, b.id());
            Ok(())
        });
        sim.run()
            .expect("run")
            .expect_all_finished()
            .expect("all done");
        drop(a);
    }

    #[test]
    fn wait_event_timeout_expires() {
        let mut sim = Simulation::new();
        let ev = sim.event("late");
        sim.spawn_process("waiter", move |ctx| {
            let fired = ctx.wait_event_timeout(&ev, SimTime::ns(20))?;
            assert!(!fired);
            assert_eq!(ctx.now(), SimTime::ns(20));
            Ok(())
        });
        sim.run().expect("run");
    }

    #[test]
    fn wait_event_timeout_fires() {
        let mut sim = Simulation::new();
        let ev = sim.event("soon");
        let ev2 = ev.clone();
        sim.spawn_process("notifier", move |ctx| {
            ctx.notify_after(&ev2, SimTime::ns(5));
            Ok(())
        });
        sim.spawn_process("waiter", move |ctx| {
            let fired = ctx.wait_event_timeout(&ev, SimTime::ns(20))?;
            assert!(fired);
            assert_eq!(ctx.now(), SimTime::ns(5));
            Ok(())
        });
        sim.run().expect("run");
    }

    #[test]
    fn wait_event_timeout_event_wins_exact_tie() {
        // Notification scheduled before the waiter blocks: the event's
        // heap entry precedes the deadline entry.
        let mut sim = Simulation::new();
        let ev = sim.event("tie");
        let ev2 = ev.clone();
        sim.spawn_process("notifier", move |ctx| {
            ctx.notify_after(&ev2, SimTime::ns(20));
            Ok(())
        });
        sim.spawn_process("waiter", move |ctx| {
            let fired = ctx.wait_event_timeout(&ev, SimTime::ns(20))?;
            assert!(fired, "event at the exact deadline must win");
            assert_eq!(ctx.now(), SimTime::ns(20));
            Ok(())
        });
        sim.run().expect("run").expect_all_finished().expect("done");
    }

    #[test]
    fn wait_event_timeout_tie_is_independent_of_scheduling_order() {
        // Here the *deadline* entry is pushed first (the waiter spawns
        // before the notifier), so heap order alone would wake the
        // waiter with a timeout. The pinned events-before-processes rule
        // must still let the event win.
        let mut sim = Simulation::new();
        let ev = sim.event("tie");
        let ev2 = ev.clone();
        sim.spawn_process("waiter", move |ctx| {
            let fired = ctx.wait_event_timeout(&ev2, SimTime::ns(20))?;
            assert!(fired, "tie-break must not depend on scheduling order");
            assert_eq!(ctx.now(), SimTime::ns(20));
            Ok(())
        });
        sim.spawn_process("notifier", move |ctx| {
            ctx.notify_after(&ev, SimTime::ns(20));
            Ok(())
        });
        sim.run().expect("run").expect_all_finished().expect("done");
    }

    #[test]
    fn drop_terminates_blocked_processes() {
        let mut sim = Simulation::new();
        let ev = sim.event("never");
        sim.spawn_process("stuck", move |ctx| {
            ctx.wait_event(&ev)?;
            Ok(())
        });
        sim.run_until(SimTime::ns(1)).expect("partial run");
        drop(sim); // must not hang or leak the thread
    }

    #[test]
    fn delta_overflow_detected() {
        let mut sim = Simulation::new();
        sim.set_max_deltas_per_step(100);
        let a = sim.event("a");
        let b = sim.event("b");
        let (a2, b2) = (a.clone(), b.clone());
        sim.spawn_process("ping", move |ctx| loop {
            ctx.notify(&a2);
            ctx.wait_event(&b2)?;
        });
        sim.spawn_process("pong", move |ctx| loop {
            ctx.wait_event(&a)?;
            ctx.notify(&b);
        });
        let err = sim.run().expect_err("delta loop detected");
        assert!(matches!(err, SimError::Model(_)));
    }

    #[test]
    fn notify_now_wakes_in_current_eval() {
        let mut sim = Simulation::new();
        let ev = sim.event("e");
        let ev2 = ev.clone();
        sim.spawn_process("waiter", move |ctx| {
            ctx.wait_event(&ev2)?;
            assert_eq!(ctx.now(), SimTime::ZERO);
            Ok(())
        });
        sim.spawn_process("notifier", move |ctx| {
            ctx.notify_now(&ev);
            Ok(())
        });
        let report = sim.run().expect("run");
        assert_eq!(report.finished, 2);
    }

    #[test]
    fn many_processes_scale() {
        let mut sim = Simulation::new();
        for i in 0..64 {
            sim.spawn_process(&format!("w{i}"), move |ctx| {
                for _ in 0..10 {
                    ctx.wait(SimTime::ns(1 + i as u64))?;
                }
                Ok(())
            });
        }
        let report = sim.run().expect("run");
        assert_eq!(report.finished, 64);
        assert_eq!(report.end_time, SimTime::ns(640));
    }

    #[test]
    fn sched_probe_counts_activations_and_wait_time() {
        let mut sim = Simulation::new();
        sim.enable_sched_probe();
        let ev = sim.event("go");
        let ev2 = ev.clone();
        sim.spawn_process("waiter", move |ctx| {
            ctx.wait_event(&ev2)?; // woken at 7 ns
            ctx.wait(SimTime::ns(3))?;
            Ok(())
        });
        sim.spawn_process("notifier", move |ctx| {
            ctx.wait(SimTime::ns(7))?;
            ctx.notify_now(&ev);
            Ok(())
        });
        sim.run().expect("run");
        let snap = sim.sched_snapshot().expect("probe enabled");
        assert_eq!(snap.procs.len(), 2);
        let waiter = &snap.procs[0];
        assert_eq!(waiter.name, "waiter");
        // Initial slice + event wakeup + timed wakeup.
        assert_eq!(waiter.activations, 3);
        assert_eq!(waiter.wakeups, 2);
        assert_eq!(waiter.wait_time, SimTime::ns(10), "7 ns event + 3 ns timed");
        let notifier = &snap.procs[1];
        assert_eq!(notifier.wakeups, 1);
        assert_eq!(notifier.wait_time, SimTime::ns(7));
        assert!(snap.runnable_depth_max >= 1);
        assert_eq!(snap.wait_hist.count(), 3);
    }

    #[test]
    fn sched_snapshot_is_none_without_probe() {
        let mut sim = Simulation::new();
        sim.spawn_process("p", |ctx| ctx.wait(SimTime::ns(1)));
        sim.run().expect("run");
        assert!(sim.sched_snapshot().is_none());
    }
}
