//! A mutex for simulated processes.

use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::context::Context;
use crate::error::SimResult;
use crate::event::Event;
use crate::kernel::{ProcId, Simulation};

struct Inner {
    owner: Mutex<Option<ProcId>>,
    released: Event,
}

/// A mutual-exclusion lock between simulation processes (`sc_mutex`-like).
///
/// Unlike an OS mutex this never blocks the host thread directly: waiting
/// processes yield to the kernel and are woken on release. Acquisition is
/// not guaranteed FIFO — use an OSSS shared-object arbiter for policy-
/// controlled access.
///
/// # Example
///
/// ```
/// use osss_sim::{Simulation, SimTime};
/// use osss_sim::prim::SimMutex;
///
/// # fn main() -> Result<(), osss_sim::SimError> {
/// let mut sim = Simulation::new();
/// let m = SimMutex::new(&mut sim, "bus");
/// for i in 0..2 {
///     let m = m.clone();
///     sim.spawn_process(&format!("user{i}"), move |ctx| {
///         m.lock(ctx)?;
///         ctx.wait(SimTime::ns(10))?; // exclusive section
///         m.unlock(ctx);
///         Ok(())
///     });
/// }
/// // Two 10 ns critical sections serialise to 20 ns.
/// assert_eq!(sim.run()?.end_time, SimTime::ns(20));
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct SimMutex {
    inner: Arc<Inner>,
}

impl fmt::Debug for SimMutex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimMutex")
            .field("owner", &*self.inner.owner.lock())
            .finish()
    }
}

impl SimMutex {
    /// Creates an unlocked mutex.
    pub fn new(sim: &mut Simulation, name: &str) -> Self {
        SimMutex {
            inner: Arc::new(Inner {
                owner: Mutex::new(None),
                released: sim.event(&format!("{name}.released")),
            }),
        }
    }

    /// Blocks until the lock is free, then takes it.
    ///
    /// # Errors
    ///
    /// [`crate::SimError::Terminated`] when the simulation is shutting down.
    ///
    /// # Panics
    ///
    /// Panics on attempted recursive locking by the same process.
    pub fn lock(&self, ctx: &Context) -> SimResult<()> {
        loop {
            {
                let mut owner = self.inner.owner.lock();
                match *owner {
                    None => {
                        *owner = Some(ctx.pid());
                        return Ok(());
                    }
                    Some(o) => {
                        assert_ne!(o, ctx.pid(), "recursive SimMutex lock");
                    }
                }
            }
            ctx.wait_event(&self.inner.released)?;
        }
    }

    /// Attempts to take the lock without blocking.
    pub fn try_lock(&self, ctx: &Context) -> bool {
        let mut owner = self.inner.owner.lock();
        if owner.is_none() {
            *owner = Some(ctx.pid());
            true
        } else {
            false
        }
    }

    /// Releases the lock.
    ///
    /// # Panics
    ///
    /// Panics if the calling process does not hold the lock.
    pub fn unlock(&self, ctx: &Context) {
        let mut owner = self.inner.owner.lock();
        assert_eq!(*owner, Some(ctx.pid()), "SimMutex unlocked by a non-owner");
        *owner = None;
        ctx.notify(&self.inner.released);
    }

    /// Runs `f` with the lock held.
    ///
    /// # Errors
    ///
    /// Propagates errors from `lock` and from `f`.
    pub fn with<R>(&self, ctx: &Context, f: impl FnOnce(&Context) -> SimResult<R>) -> SimResult<R> {
        self.lock(ctx)?;
        let out = f(ctx);
        self.unlock(ctx);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn serialises_critical_sections() {
        let mut sim = Simulation::new();
        let m = SimMutex::new(&mut sim, "m");
        for i in 0..4 {
            let m = m.clone();
            sim.spawn_process(&format!("p{i}"), move |ctx| {
                m.with(ctx, |ctx| ctx.wait(SimTime::ns(25)))
            });
        }
        let report = sim.run().expect("run");
        assert_eq!(report.end_time, SimTime::ns(100));
    }

    #[test]
    fn try_lock_fails_when_held() {
        let mut sim = Simulation::new();
        let m = SimMutex::new(&mut sim, "m");
        let m1 = m.clone();
        sim.spawn_process("holder", move |ctx| {
            assert!(m1.try_lock(ctx));
            ctx.wait(SimTime::ns(10))?;
            m1.unlock(ctx);
            Ok(())
        });
        let m2 = m.clone();
        sim.spawn_process("prober", move |ctx| {
            ctx.wait(SimTime::ns(5))?;
            assert!(!m2.try_lock(ctx));
            ctx.wait(SimTime::ns(10))?;
            assert!(m2.try_lock(ctx));
            m2.unlock(ctx);
            Ok(())
        });
        sim.run().expect("run").expect_all_finished().expect("done");
    }
}
