//! Signals with SystemC-like evaluate/update semantics.

use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::context::Context;
use crate::error::SimResult;
use crate::event::{Event, EventId};
use crate::kernel::{Simulation, UpdateHook};

struct Core<T> {
    current: T,
    next: Option<T>,
    queued: bool,
}

struct Inner<T> {
    core: Mutex<Core<T>>,
    changed: Event,
}

impl<T> UpdateHook for Inner<T>
where
    T: Clone + PartialEq + Send + Sync,
{
    fn apply(&self) -> Option<EventId> {
        let mut core = self.core.lock();
        core.queued = false;
        match core.next.take() {
            Some(next) if next != core.current => {
                core.current = next;
                Some(self.changed.id())
            }
            _ => None,
        }
    }
}

/// A value holder with evaluate/update semantics: writes become visible in
/// the next delta cycle, and readers can wait on the value-changed event.
///
/// This mirrors `sc_signal`: within one evaluation phase every reader sees
/// the same stable value regardless of writer ordering.
///
/// # Example
///
/// ```
/// use osss_sim::{Simulation, SimTime};
/// use osss_sim::prim::Signal;
///
/// # fn main() -> Result<(), osss_sim::SimError> {
/// let mut sim = Simulation::new();
/// let sig = Signal::new(&mut sim, "ready", false);
///
/// let writer_sig = sig.clone();
/// sim.spawn_process("writer", move |ctx| {
///     ctx.wait(SimTime::ns(10))?;
///     writer_sig.write(ctx, true);
///     Ok(())
/// });
/// let reader_sig = sig.clone();
/// sim.spawn_process("reader", move |ctx| {
///     reader_sig.wait_until(ctx, |v| *v)?;
///     assert_eq!(ctx.now(), SimTime::ns(10));
///     Ok(())
/// });
/// sim.run()?.expect_all_finished()?;
/// # Ok(())
/// # }
/// ```
pub struct Signal<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for Signal<T> {
    fn clone(&self) -> Self {
        Signal {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Signal<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let core = self.inner.core.lock();
        f.debug_struct("Signal")
            .field("current", &core.current)
            .field("pending", &core.next)
            .finish()
    }
}

impl<T> Signal<T>
where
    T: Clone + PartialEq + Send + Sync + 'static,
{
    /// Creates a signal with an initial value.
    pub fn new(sim: &mut Simulation, name: &str, initial: T) -> Self {
        let changed = sim.event(&format!("{name}.changed"));
        Signal {
            inner: Arc::new(Inner {
                core: Mutex::new(Core {
                    current: initial,
                    next: None,
                    queued: false,
                }),
                changed,
            }),
        }
    }

    /// Reads the currently visible value.
    pub fn read(&self) -> T {
        self.inner.core.lock().current.clone()
    }

    /// Schedules `value` to become visible in the next delta cycle.
    ///
    /// The last write of an evaluation phase wins, matching `sc_signal`.
    pub fn write(&self, ctx: &Context, value: T) {
        let register = {
            let mut core = self.inner.core.lock();
            core.next = Some(value);
            !std::mem::replace(&mut core.queued, true)
        };
        if register {
            let hook: Arc<dyn UpdateHook> = Arc::clone(&self.inner) as Arc<dyn UpdateHook>;
            ctx.shared().state.lock().register_update(hook);
        }
    }

    /// The value-changed event (fires only when the new value differs).
    pub fn changed(&self) -> &Event {
        &self.inner.changed
    }

    /// Blocks until `pred` holds for the signal value.
    ///
    /// # Errors
    ///
    /// [`crate::SimError::Terminated`] when the simulation is shutting down.
    pub fn wait_until(&self, ctx: &Context, pred: impl Fn(&T) -> bool) -> SimResult<()> {
        loop {
            {
                let core = self.inner.core.lock();
                if pred(&core.current) {
                    return Ok(());
                }
            }
            ctx.wait_event(&self.inner.changed)?;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn write_becomes_visible_next_delta() {
        let mut sim = Simulation::new();
        let sig = Signal::new(&mut sim, "s", 0u32);
        let s1 = sig.clone();
        sim.spawn_process("writer", move |ctx| {
            s1.write(ctx, 7);
            // Same evaluation phase: the old value is still visible.
            assert_eq!(s1.read(), 0);
            ctx.wait(SimTime::ZERO)?;
            assert_eq!(s1.read(), 7);
            Ok(())
        });
        sim.run().expect("run").expect_all_finished().expect("done");
    }

    #[test]
    fn last_write_wins_within_one_phase() {
        let mut sim = Simulation::new();
        let sig = Signal::new(&mut sim, "s", 0u32);
        let s1 = sig.clone();
        sim.spawn_process("w1", move |ctx| {
            s1.write(ctx, 1);
            Ok(())
        });
        let s2 = sig.clone();
        sim.spawn_process("w2", move |ctx| {
            s2.write(ctx, 2);
            Ok(())
        });
        let s3 = sig.clone();
        sim.spawn_process("reader", move |ctx| {
            ctx.wait(SimTime::ns(1))?;
            assert_eq!(s3.read(), 2);
            Ok(())
        });
        sim.run().expect("run");
    }

    #[test]
    fn changed_event_only_on_actual_change() {
        let mut sim = Simulation::new();
        let sig = Signal::new(&mut sim, "s", 5u32);
        let s1 = sig.clone();
        sim.spawn_process("writer", move |ctx| {
            s1.write(ctx, 5); // no-op write: must not fire changed
            ctx.wait(SimTime::ns(10))?;
            s1.write(ctx, 6);
            Ok(())
        });
        let s2 = sig.clone();
        sim.spawn_process("reader", move |ctx| {
            ctx.wait_event(s2.changed())?;
            assert_eq!(ctx.now(), SimTime::ns(10));
            assert_eq!(s2.read(), 6);
            Ok(())
        });
        sim.run().expect("run").expect_all_finished().expect("done");
    }

    #[test]
    fn wait_until_returns_immediately_when_true() {
        let mut sim = Simulation::new();
        let sig = Signal::new(&mut sim, "s", true);
        let s = sig.clone();
        sim.spawn_process("p", move |ctx| {
            s.wait_until(ctx, |v| *v)?;
            assert_eq!(ctx.now(), SimTime::ZERO);
            Ok(())
        });
        sim.run().expect("run").expect_all_finished().expect("done");
    }
}
