//! Modelling primitives built on the kernel: signals with SystemC update
//! semantics, bounded blocking FIFOs, simulation mutexes and semaphores.

mod clock;
mod fifo;
mod mutex;
mod semaphore;
mod signal;

pub use clock::Clock;
pub use fifo::Fifo;
pub use mutex::SimMutex;
pub use semaphore::Semaphore;
pub use signal::Signal;
