//! Bounded blocking FIFO channel, the workhorse of pipelined models.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::context::Context;
use crate::error::SimResult;
use crate::event::Event;
use crate::kernel::Simulation;

struct Inner<T> {
    queue: Mutex<VecDeque<T>>,
    capacity: usize,
    not_empty: Event,
    not_full: Event,
}

/// A bounded FIFO with blocking `read`/`write`, modelled after `sc_fifo`.
///
/// The JPEG 2000 pipeline versions (model 3 and 5) pass tiles between the
/// software stage and the hardware shared object through FIFOs like this.
///
/// # Example
///
/// ```
/// use osss_sim::{Simulation, SimTime};
/// use osss_sim::prim::Fifo;
///
/// # fn main() -> Result<(), osss_sim::SimError> {
/// let mut sim = Simulation::new();
/// let fifo = Fifo::new(&mut sim, "tiles", 2);
/// let tx = fifo.clone();
/// sim.spawn_process("producer", move |ctx| {
///     for i in 0..4u32 {
///         tx.write(ctx, i)?;
///     }
///     Ok(())
/// });
/// let rx = fifo.clone();
/// sim.spawn_process("consumer", move |ctx| {
///     for i in 0..4u32 {
///         ctx.wait(SimTime::ns(5))?;
///         assert_eq!(rx.read(ctx)?, i);
///     }
///     Ok(())
/// });
/// sim.run()?.expect_all_finished()?;
/// # Ok(())
/// # }
/// ```
pub struct Fifo<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for Fifo<T> {
    fn clone(&self) -> Self {
        Fifo {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Fifo<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Fifo")
            .field("len", &self.inner.queue.lock().len())
            .field("capacity", &self.inner.capacity)
            .finish()
    }
}

impl<T: Send + 'static> Fifo<T> {
    /// Creates a FIFO holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(sim: &mut Simulation, name: &str, capacity: usize) -> Self {
        assert!(capacity > 0, "fifo capacity must be non-zero");
        Fifo {
            inner: Arc::new(Inner {
                queue: Mutex::new(VecDeque::with_capacity(capacity)),
                capacity,
                not_empty: sim.event(&format!("{name}.not_empty")),
                not_full: sim.event(&format!("{name}.not_full")),
            }),
        }
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.inner.queue.lock().len()
    }

    /// Whether the FIFO holds no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the FIFO is at capacity.
    pub fn is_full(&self) -> bool {
        self.len() == self.inner.capacity
    }

    /// Blocks until space is available, then enqueues `value`.
    ///
    /// # Errors
    ///
    /// [`crate::SimError::Terminated`] when the simulation is shutting down.
    pub fn write(&self, ctx: &Context, value: T) -> SimResult<()> {
        let mut value = Some(value);
        loop {
            {
                let mut q = self.inner.queue.lock();
                if q.len() < self.inner.capacity {
                    q.push_back(value.take().expect("value still pending"));
                    ctx.notify(&self.inner.not_empty);
                    return Ok(());
                }
            }
            ctx.wait_event(&self.inner.not_full)?;
        }
    }

    /// Blocks until an item is available, then dequeues it.
    ///
    /// # Errors
    ///
    /// [`crate::SimError::Terminated`] when the simulation is shutting down.
    pub fn read(&self, ctx: &Context) -> SimResult<T> {
        loop {
            {
                let mut q = self.inner.queue.lock();
                if let Some(v) = q.pop_front() {
                    ctx.notify(&self.inner.not_full);
                    return Ok(v);
                }
            }
            ctx.wait_event(&self.inner.not_empty)?;
        }
    }

    /// Non-blocking write; returns the value back if the FIFO is full.
    pub fn try_write(&self, ctx: &Context, value: T) -> Result<(), T> {
        let mut q = self.inner.queue.lock();
        if q.len() < self.inner.capacity {
            q.push_back(value);
            ctx.notify(&self.inner.not_empty);
            Ok(())
        } else {
            Err(value)
        }
    }

    /// Non-blocking read.
    pub fn try_read(&self, ctx: &Context) -> Option<T> {
        let mut q = self.inner.queue.lock();
        let v = q.pop_front();
        if v.is_some() {
            ctx.notify(&self.inner.not_full);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn backpressure_blocks_producer() {
        let mut sim = Simulation::new();
        let fifo = Fifo::new(&mut sim, "f", 1);
        let tx = fifo.clone();
        sim.spawn_process("producer", move |ctx| {
            tx.write(ctx, 1u32)?;
            tx.write(ctx, 2)?; // blocks until consumer drains
            assert_eq!(ctx.now(), SimTime::ns(10));
            Ok(())
        });
        let rx = fifo.clone();
        sim.spawn_process("consumer", move |ctx| {
            ctx.wait(SimTime::ns(10))?;
            assert_eq!(rx.read(ctx)?, 1);
            assert_eq!(rx.read(ctx)?, 2);
            Ok(())
        });
        sim.run().expect("run").expect_all_finished().expect("done");
    }

    #[test]
    fn reader_blocks_until_data() {
        let mut sim = Simulation::new();
        let fifo = Fifo::new(&mut sim, "f", 4);
        let rx = fifo.clone();
        sim.spawn_process("consumer", move |ctx| {
            assert_eq!(rx.read(ctx)?, 42u32);
            assert_eq!(ctx.now(), SimTime::us(1));
            Ok(())
        });
        let tx = fifo.clone();
        sim.spawn_process("producer", move |ctx| {
            ctx.wait(SimTime::us(1))?;
            tx.write(ctx, 42)?;
            Ok(())
        });
        sim.run().expect("run").expect_all_finished().expect("done");
    }

    #[test]
    fn try_variants() {
        let mut sim = Simulation::new();
        let fifo = Fifo::new(&mut sim, "f", 1);
        let f = fifo.clone();
        sim.spawn_process("p", move |ctx| {
            assert_eq!(f.try_read(ctx), None);
            assert!(f.try_write(ctx, 1u8).is_ok());
            assert_eq!(f.try_write(ctx, 2), Err(2));
            assert!(f.is_full());
            assert_eq!(f.try_read(ctx), Some(1));
            assert!(f.is_empty());
            Ok(())
        });
        sim.run().expect("run");
    }

    #[test]
    fn preserves_order_across_many_items() {
        let mut sim = Simulation::new();
        let fifo = Fifo::new(&mut sim, "f", 3);
        let tx = fifo.clone();
        sim.spawn_process("producer", move |ctx| {
            for i in 0..100u32 {
                tx.write(ctx, i)?;
            }
            Ok(())
        });
        let rx = fifo.clone();
        sim.spawn_process("consumer", move |ctx| {
            for i in 0..100u32 {
                assert_eq!(rx.read(ctx)?, i);
            }
            Ok(())
        });
        sim.run().expect("run").expect_all_finished().expect("done");
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let mut sim = Simulation::new();
        let _ = Fifo::<u8>::new(&mut sim, "f", 0);
    }
}
