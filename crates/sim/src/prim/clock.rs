//! A periodic clock source (`sc_clock`-like).

use std::sync::Arc;

use parking_lot::Mutex;

use crate::context::Context;
use crate::error::SimResult;
use crate::event::Event;
use crate::kernel::Simulation;
use crate::time::{Frequency, SimTime};

struct Inner {
    period: SimTime,
    tick: Event,
    ticks: Mutex<u64>,
    started: Mutex<bool>,
}

/// A periodic event source: fires `tick` every period once started.
///
/// Most models in this workspace use transaction-level timing (waits of
/// *n × period*) for efficiency; a `Clock` is for the cases that genuinely
/// need per-edge activity, like the RTL-ish examples and cycle-counting
/// monitors.
///
/// # Example
///
/// ```
/// use osss_sim::{Frequency, SimTime, Simulation};
/// use osss_sim::prim::Clock;
///
/// # fn main() -> Result<(), osss_sim::SimError> {
/// let mut sim = Simulation::new();
/// let clk = Clock::new(&mut sim, "clk", Frequency::mhz(100));
/// clk.start(&mut sim);
/// let clk2 = clk.clone();
/// sim.spawn_process("sampler", move |ctx| {
///     for _ in 0..5 {
///         clk2.wait_edge(ctx)?;
///     }
///     assert_eq!(ctx.now(), SimTime::ns(50));
///     assert_eq!(clk2.ticks(), 5);
///     Ok(())
/// });
/// sim.run_until(SimTime::ns(55))?;
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct Clock {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Clock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Clock")
            .field("period", &self.inner.period)
            .field("ticks", &*self.inner.ticks.lock())
            .finish()
    }
}

impl Clock {
    /// Creates a clock of the given frequency (not yet running).
    pub fn new(sim: &mut Simulation, name: &str, freq: Frequency) -> Self {
        Clock {
            inner: Arc::new(Inner {
                period: freq.period(),
                tick: sim.event(&format!("clk:{name}.tick")),
                ticks: Mutex::new(0),
                started: Mutex::new(false),
            }),
        }
    }

    /// Spawns the generator process; the first edge fires one period after
    /// simulation start. Idempotent.
    pub fn start(&self, sim: &mut Simulation) {
        let mut started = self.inner.started.lock();
        if *started {
            return;
        }
        *started = true;
        let inner = Arc::clone(&self.inner);
        sim.spawn_process("clock_gen", move |ctx| loop {
            ctx.wait(inner.period)?;
            *inner.ticks.lock() += 1;
            ctx.notify(&inner.tick);
        });
    }

    /// The clock period.
    pub fn period(&self) -> SimTime {
        self.inner.period
    }

    /// Rising edges generated so far.
    pub fn ticks(&self) -> u64 {
        *self.inner.ticks.lock()
    }

    /// The tick event (for `wait_any` compositions).
    pub fn tick_event(&self) -> &Event {
        &self.inner.tick
    }

    /// Blocks until the next rising edge.
    ///
    /// # Errors
    ///
    /// [`crate::SimError::Terminated`] when the simulation is shutting
    /// down.
    pub fn wait_edge(&self, ctx: &Context) -> SimResult<()> {
        ctx.wait_event(&self.inner.tick)
    }

    /// Blocks for `n` rising edges.
    ///
    /// # Errors
    ///
    /// [`crate::SimError::Terminated`] when the simulation is shutting
    /// down.
    pub fn wait_edges(&self, ctx: &Context, n: u64) -> SimResult<()> {
        for _ in 0..n {
            self.wait_edge(ctx)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_arrive_on_the_grid() {
        let mut sim = Simulation::new();
        let clk = Clock::new(&mut sim, "clk", Frequency::mhz(100));
        clk.start(&mut sim);
        let c = clk.clone();
        sim.spawn_process("p", move |ctx| {
            c.wait_edge(ctx)?;
            assert_eq!(ctx.now(), SimTime::ns(10));
            c.wait_edges(ctx, 3)?;
            assert_eq!(ctx.now(), SimTime::ns(40));
            Ok(())
        });
        sim.run_until(SimTime::ns(100)).expect("run");
        assert_eq!(clk.ticks(), 10);
    }

    #[test]
    fn start_is_idempotent() {
        let mut sim = Simulation::new();
        let clk = Clock::new(&mut sim, "clk", Frequency::mhz(50));
        clk.start(&mut sim);
        clk.start(&mut sim); // no second generator process
        sim.run_until(SimTime::ns(100)).expect("run");
        assert_eq!(clk.ticks(), 5, "one generator, 20 ns period");
    }

    #[test]
    fn multiple_listeners_share_edges() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let hits = Arc::new(AtomicU64::new(0));
        let mut sim = Simulation::new();
        let clk = Clock::new(&mut sim, "clk", Frequency::mhz(100));
        clk.start(&mut sim);
        for i in 0..3 {
            let c = clk.clone();
            let hits = Arc::clone(&hits);
            sim.spawn_process(&format!("l{i}"), move |ctx| {
                for _ in 0..4 {
                    c.wait_edge(ctx)?;
                    hits.fetch_add(1, Ordering::SeqCst);
                }
                Ok(())
            });
        }
        sim.run_until(SimTime::ns(100)).expect("run");
        assert_eq!(hits.load(Ordering::SeqCst), 12);
    }
}
