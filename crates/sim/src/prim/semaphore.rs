//! Counting semaphore for simulated processes.

use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::context::Context;
use crate::error::SimResult;
use crate::event::Event;
use crate::kernel::Simulation;

struct Inner {
    count: Mutex<usize>,
    released: Event,
}

/// A counting semaphore (`sc_semaphore`-like), used e.g. to model a pool of
/// identical hardware resources such as the three parallel IDWT blocks.
///
/// # Example
///
/// ```
/// use osss_sim::{Simulation, SimTime};
/// use osss_sim::prim::Semaphore;
///
/// # fn main() -> Result<(), osss_sim::SimError> {
/// let mut sim = Simulation::new();
/// let pool = Semaphore::new(&mut sim, "idwt_units", 3);
/// for i in 0..6 {
///     let pool = pool.clone();
///     sim.spawn_process(&format!("tile{i}"), move |ctx| {
///         pool.acquire(ctx)?;
///         ctx.wait(SimTime::us(10))?; // one IDWT pass
///         pool.release(ctx);
///         Ok(())
///     });
/// }
/// // Six jobs over three units take two rounds.
/// assert_eq!(sim.run()?.end_time, SimTime::us(20));
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct Semaphore {
    inner: Arc<Inner>,
}

impl fmt::Debug for Semaphore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Semaphore")
            .field("available", &*self.inner.count.lock())
            .finish()
    }
}

impl Semaphore {
    /// Creates a semaphore with `permits` initially available.
    pub fn new(sim: &mut Simulation, name: &str, permits: usize) -> Self {
        Semaphore {
            inner: Arc::new(Inner {
                count: Mutex::new(permits),
                released: sim.event(&format!("{name}.released")),
            }),
        }
    }

    /// Currently available permits.
    pub fn available(&self) -> usize {
        *self.inner.count.lock()
    }

    /// Blocks until a permit is available, then takes one.
    ///
    /// # Errors
    ///
    /// [`crate::SimError::Terminated`] when the simulation is shutting down.
    pub fn acquire(&self, ctx: &Context) -> SimResult<()> {
        loop {
            {
                let mut count = self.inner.count.lock();
                if *count > 0 {
                    *count -= 1;
                    return Ok(());
                }
            }
            ctx.wait_event(&self.inner.released)?;
        }
    }

    /// Takes a permit if one is available.
    pub fn try_acquire(&self) -> bool {
        let mut count = self.inner.count.lock();
        if *count > 0 {
            *count -= 1;
            true
        } else {
            false
        }
    }

    /// Returns one permit.
    pub fn release(&self, ctx: &Context) {
        *self.inner.count.lock() += 1;
        ctx.notify(&self.inner.released);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn limits_concurrency() {
        let mut sim = Simulation::new();
        let sem = Semaphore::new(&mut sim, "s", 2);
        for i in 0..4 {
            let sem = sem.clone();
            sim.spawn_process(&format!("p{i}"), move |ctx| {
                sem.acquire(ctx)?;
                ctx.wait(SimTime::ns(10))?;
                sem.release(ctx);
                Ok(())
            });
        }
        // Four jobs, two at a time: 20 ns.
        assert_eq!(sim.run().expect("run").end_time, SimTime::ns(20));
    }

    #[test]
    fn try_acquire_counts() {
        let mut sim = Simulation::new();
        let sem = Semaphore::new(&mut sim, "s", 1);
        let s = sem.clone();
        sim.spawn_process("p", move |ctx| {
            assert!(s.try_acquire());
            assert!(!s.try_acquire());
            s.release(ctx);
            assert_eq!(s.available(), 1);
            Ok(())
        });
        sim.run().expect("run");
    }
}
