//! Event handles — the kernel's synchronisation primitive.

use std::fmt;
use std::sync::Arc;

use crate::kernel::Shared;

/// Identifier of an event inside one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub(crate) usize);

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "event#{}", self.0)
    }
}

/// A cloneable handle to a simulation event.
///
/// Events are created with [`crate::Simulation::event`] (or
/// [`crate::Context::event`] from inside a process) and notified through
/// the running process's [`crate::Context`]. Notification uses SystemC-like
/// semantics:
///
/// * [`crate::Context::notify`] — *delta* notification: waiters resume in
///   the next delta cycle at the same simulation time.
/// * [`crate::Context::notify_after`] — *timed* notification.
///
/// # Example
///
/// ```
/// use osss_sim::{Simulation, SimTime};
/// # fn main() -> Result<(), osss_sim::SimError> {
/// let mut sim = Simulation::new();
/// let done = sim.event("done");
/// let done2 = done.clone();
/// sim.spawn_process("worker", move |ctx| {
///     ctx.notify_after(&done2, SimTime::us(3));
///     Ok(())
/// });
/// sim.spawn_process("waiter", move |ctx| {
///     ctx.wait_event(&done)?;
///     Ok(())
/// });
/// assert_eq!(sim.run()?.end_time, SimTime::us(3));
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct Event {
    pub(crate) id: EventId,
    pub(crate) shared: Arc<Shared>,
}

impl Event {
    /// The event's identifier (unique within its simulation).
    pub fn id(&self) -> EventId {
        self.id
    }

    /// The debug name given at creation.
    pub fn name(&self) -> String {
        self.shared.event_name(self.id)
    }
}

impl fmt::Debug for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Event")
            .field("id", &self.id.0)
            .field("name", &self.name())
            .finish()
    }
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id && Arc::ptr_eq(&self.shared, &other.shared)
    }
}

impl Eq for Event {}
