//! A small, strict VCD (value change dump) parser.
//!
//! This is the in-repo validator for everything [`crate::trace::Tracer`]
//! emits: golden tests and CI parse the dump back and fail on the exact
//! classes of damage waveform viewers reject silently or loudly —
//! unbalanced `$scope`/`$upscope`, changes against undeclared
//! identifiers, string changes on vector vars, non-monotonic
//! timestamps. It is deliberately stricter than GTKWave: a dump that
//! passes here opens everywhere.
//!
//! ```
//! use osss_sim::vcd::parse;
//!
//! let doc = parse("$timescale 1ps $end\n$scope module top $end\n\
//!                  $var wire 64 ! count $end\n$upscope $end\n\
//!                  $enddefinitions $end\n#0\nb101 !\n")
//!     .expect("valid");
//! assert_eq!(doc.vars.len(), 1);
//! assert_eq!(doc.changes.len(), 1);
//! ```

use std::collections::HashMap;

/// One `$var` declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VcdVar {
    /// Enclosing scope path, outermost first.
    pub scope: Vec<String>,
    /// Declared variable type (`wire`, `reg`, `string`, ...).
    pub var_type: String,
    /// Declared bit width.
    pub width: u32,
    /// Identifier code used by value changes.
    pub ident: String,
    /// Human-readable name.
    pub name: String,
}

/// The payload of one value change.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VcdValue {
    /// `b...` binary vector change.
    Vector(String),
    /// Single-bit scalar change (`0`, `1`, `x`, `z`).
    Scalar(char),
    /// `s...` string change.
    Text(String),
    /// `r...` real change.
    Real(String),
}

/// One timestamped value change.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VcdChange {
    /// Timestamp in timescale units.
    pub time: u64,
    /// Identifier code of the changed variable.
    pub ident: String,
    /// The new value.
    pub value: VcdValue,
}

/// A parsed dump.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VcdDoc {
    /// Content of the `$timescale` directive.
    pub timescale: String,
    /// All declared variables, in declaration order.
    pub vars: Vec<VcdVar>,
    /// All value changes, in file order.
    pub changes: Vec<VcdChange>,
}

impl VcdDoc {
    /// The declaration for identifier `ident`, if any.
    pub fn var(&self, ident: &str) -> Option<&VcdVar> {
        self.vars.iter().find(|v| v.ident == ident)
    }

    /// The declaration whose name is `name`, if any.
    pub fn var_named(&self, name: &str) -> Option<&VcdVar> {
        self.vars.iter().find(|v| v.name == name)
    }

    /// All changes for the variable named `name`, in time order.
    pub fn changes_of(&self, name: &str) -> Vec<&VcdChange> {
        match self.var_named(name) {
            Some(v) => self.changes.iter().filter(|c| c.ident == v.ident).collect(),
            None => Vec::new(),
        }
    }
}

/// A parse or validation failure, with the 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VcdError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for VcdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "vcd line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for VcdError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, VcdError> {
    Err(VcdError {
        line,
        message: message.into(),
    })
}

/// Var types that legally take `b...` vector and scalar changes.
fn is_vector_type(t: &str) -> bool {
    matches!(
        t,
        "wire" | "reg" | "integer" | "parameter" | "logic" | "tri" | "supply0" | "supply1"
    )
}

/// Parses and validates `src`.
///
/// # Errors
///
/// [`VcdError`] on the first structural violation: missing
/// `$timescale`/`$enddefinitions`, unbalanced scopes, vars outside a
/// scope, duplicate identifiers, changes before the first timestamp or
/// against undeclared identifiers, string changes on non-string vars,
/// vector changes on string vars, malformed or non-increasing
/// timestamps.
pub fn parse(src: &str) -> Result<VcdDoc, VcdError> {
    let mut doc = VcdDoc::default();
    let mut idents: HashMap<String, usize> = HashMap::new();
    let mut scope_stack: Vec<String> = Vec::new();
    let mut in_defs = true;
    let mut saw_timescale = false;
    let mut now: Option<u64> = None;

    for (i, raw) in src.lines().enumerate() {
        let n = i + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let tok: Vec<&str> = line.split_whitespace().collect();
        if in_defs {
            match tok[0] {
                "$timescale" => {
                    if tok.last() != Some(&"$end") {
                        return err(n, "$timescale not terminated by $end");
                    }
                    doc.timescale = tok[1..tok.len() - 1].join(" ");
                    saw_timescale = true;
                }
                "$scope" => {
                    if tok.len() != 4 || tok[1] != "module" || tok[3] != "$end" {
                        return err(n, format!("malformed $scope: `{line}`"));
                    }
                    scope_stack.push(tok[2].to_string());
                }
                "$upscope" => {
                    if scope_stack.pop().is_none() {
                        return err(n, "$upscope without matching $scope");
                    }
                }
                "$var" => {
                    if tok.len() != 6 || tok[5] != "$end" {
                        return err(n, format!("malformed $var: `{line}`"));
                    }
                    if scope_stack.is_empty() {
                        return err(n, format!("$var `{}` outside any $scope", tok[4]));
                    }
                    let width: u32 = match tok[2].parse() {
                        Ok(w) => w,
                        Err(_) => return err(n, format!("bad $var width `{}`", tok[2])),
                    };
                    let ident = tok[3].to_string();
                    if idents.contains_key(&ident) {
                        return err(n, format!("duplicate identifier `{ident}`"));
                    }
                    idents.insert(ident.clone(), doc.vars.len());
                    doc.vars.push(VcdVar {
                        scope: scope_stack.clone(),
                        var_type: tok[1].to_string(),
                        width,
                        ident,
                        name: tok[4].to_string(),
                    });
                }
                "$enddefinitions" => {
                    if !scope_stack.is_empty() {
                        return err(
                            n,
                            format!("{} unclosed $scope at $enddefinitions", scope_stack.len()),
                        );
                    }
                    if !saw_timescale {
                        return err(n, "no $timescale before $enddefinitions");
                    }
                    in_defs = false;
                }
                "$comment" | "$date" | "$version" => {} // single-line only
                other => return err(n, format!("unexpected token in definitions: `{other}`")),
            }
            continue;
        }
        // Body: timestamps and value changes.
        if let Some(t) = line.strip_prefix('#') {
            let t: u64 = match t.parse() {
                Ok(t) => t,
                Err(_) => return err(n, format!("bad timestamp `{line}`")),
            };
            if let Some(prev) = now {
                if t <= prev {
                    return err(n, format!("non-monotonic timestamp #{t} after #{prev}"));
                }
            }
            now = Some(t);
            continue;
        }
        if now.is_none() {
            return err(n, format!("value change before first timestamp: `{line}`"));
        }
        let time = now.unwrap_or(0);
        let (value, ident) = if let Some(rest) = line.strip_prefix('b') {
            let (bits, ident) = split_change(rest, n, "vector")?;
            if bits.is_empty() || !bits.chars().all(|c| "01xzXZ".contains(c)) {
                return err(n, format!("bad vector value `b{bits}`"));
            }
            (VcdValue::Vector(bits.to_string()), ident)
        } else if let Some(rest) = line.strip_prefix('s') {
            let (text, ident) = split_change(rest, n, "string")?;
            (VcdValue::Text(text.to_string()), ident)
        } else if let Some(rest) = line.strip_prefix('r') {
            let (real, ident) = split_change(rest, n, "real")?;
            if real.parse::<f64>().is_err() {
                return err(n, format!("bad real value `r{real}`"));
            }
            (VcdValue::Real(real.to_string()), ident)
        } else if tok.len() == 1 && tok[0].len() >= 2 {
            let mut chars = tok[0].chars();
            let bit = chars.next().unwrap_or('?');
            if !"01xzXZ".contains(bit) {
                return err(n, format!("unrecognised change line `{line}`"));
            }
            (VcdValue::Scalar(bit), chars.as_str().to_string())
        } else {
            return err(n, format!("unrecognised change line `{line}`"));
        };
        let var = match idents.get(&ident) {
            Some(&i) => &doc.vars[i],
            None => return err(n, format!("change references undeclared ident `{ident}`")),
        };
        match &value {
            VcdValue::Vector(bits) => {
                if !is_vector_type(&var.var_type) {
                    return err(
                        n,
                        format!(
                            "vector change on `{}` declared as {}",
                            var.name, var.var_type
                        ),
                    );
                }
                if bits.len() as u32 > var.width {
                    return err(
                        n,
                        format!(
                            "vector value of {} bits exceeds width {} of `{}`",
                            bits.len(),
                            var.width,
                            var.name
                        ),
                    );
                }
            }
            VcdValue::Text(_) => {
                if var.var_type != "string" {
                    return err(
                        n,
                        format!(
                            "string change on `{}` declared as {} (gtkwave rejects this)",
                            var.name, var.var_type
                        ),
                    );
                }
            }
            VcdValue::Real(_) => {
                if var.var_type != "real" {
                    return err(
                        n,
                        format!("real change on `{}` declared as {}", var.name, var.var_type),
                    );
                }
            }
            VcdValue::Scalar(_) => {
                if !is_vector_type(&var.var_type) || var.width != 1 {
                    return err(
                        n,
                        format!(
                            "scalar change on `{}` ({} {})",
                            var.name, var.var_type, var.width
                        ),
                    );
                }
            }
        }
        doc.changes.push(VcdChange { time, ident, value });
    }
    if in_defs {
        return err(src.lines().count().max(1), "missing $enddefinitions");
    }
    Ok(doc)
}

fn split_change<'a>(rest: &'a str, line: usize, kind: &str) -> Result<(&'a str, String), VcdError> {
    // `b101 !` / `sRUNNING "` — value and identifier separated by one space.
    match rest.rsplit_once(' ') {
        Some((v, id)) if !id.is_empty() => Ok((v, id.to_string())),
        _ => err(line, format!("malformed {kind} change `{rest}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HEADER: &str = "$timescale 1ps $end\n$scope module top $end\n\
        $var wire 64 ! count $end\n$var string 1 \" state $end\n\
        $upscope $end\n$enddefinitions $end\n";

    #[test]
    fn parses_valid_dump() {
        let doc = parse(&format!("{HEADER}#0\nb101 !\nsIDLE \"\n#5\nb110 !\n")).expect("valid");
        assert_eq!(doc.timescale, "1ps");
        assert_eq!(doc.vars.len(), 2);
        assert_eq!(doc.changes.len(), 3);
        assert_eq!(doc.changes_of("count").len(), 2);
        assert_eq!(
            doc.changes_of("state")[0].value,
            VcdValue::Text("IDLE".into())
        );
        assert_eq!(doc.var_named("count").expect("count").scope, vec!["top"]);
    }

    #[test]
    fn rejects_string_change_on_wire() {
        // The exact historical tracer bug: `s...` against `$var wire 64`.
        let e = parse(&format!("{HEADER}#0\nsDECODE !\n")).expect_err("invalid");
        assert!(e.message.contains("string change"), "{e}");
    }

    #[test]
    fn rejects_vector_change_on_string_var() {
        let e = parse(&format!("{HEADER}#0\nb101 \"\n")).expect_err("invalid");
        assert!(e.message.contains("vector change"), "{e}");
    }

    #[test]
    fn rejects_undeclared_ident() {
        let e = parse(&format!("{HEADER}#0\nb1 %\n")).expect_err("invalid");
        assert!(e.message.contains("undeclared"), "{e}");
    }

    #[test]
    fn rejects_non_monotonic_timestamps() {
        let e = parse(&format!("{HEADER}#5\nb1 !\n#5\nb10 !\n")).expect_err("invalid");
        assert!(e.message.contains("non-monotonic"), "{e}");
        let e = parse(&format!("{HEADER}#5\nb1 !\n#4\nb10 !\n")).expect_err("invalid");
        assert!(e.message.contains("non-monotonic"), "{e}");
    }

    #[test]
    fn rejects_unbalanced_scopes() {
        let e = parse("$timescale 1ps $end\n$scope module a $end\n$enddefinitions $end\n")
            .expect_err("invalid");
        assert!(e.message.contains("unclosed $scope"), "{e}");
        let e = parse("$timescale 1ps $end\n$upscope $end\n$enddefinitions $end\n")
            .expect_err("invalid");
        assert!(e.message.contains("without matching"), "{e}");
    }

    #[test]
    fn rejects_var_outside_scope() {
        let e = parse("$timescale 1ps $end\n$var wire 64 ! x $end\n$enddefinitions $end\n")
            .expect_err("invalid");
        assert!(e.message.contains("outside any $scope"), "{e}");
    }

    #[test]
    fn rejects_change_before_timestamp() {
        let e = parse(&format!("{HEADER}b101 !\n")).expect_err("invalid");
        assert!(e.message.contains("before first timestamp"), "{e}");
    }

    #[test]
    fn rejects_overwide_vector() {
        let src = "$timescale 1ps $end\n$scope module t $end\n$var wire 4 ! x $end\n\
                   $upscope $end\n$enddefinitions $end\n#0\nb10101 !\n";
        let e = parse(src).expect_err("invalid");
        assert!(e.message.contains("exceeds width"), "{e}");
    }

    #[test]
    fn error_carries_line_number() {
        let e = parse(&format!("{HEADER}#0\nb101 !\nbzzz9 !\n")).expect_err("invalid");
        assert_eq!(e.line, 9);
    }

    #[test]
    fn nested_scopes_roundtrip() {
        let src = "$timescale 1ps $end\n$scope module vta $end\n$scope module bus $end\n\
                   $var wire 64 ! words $end\n$upscope $end\n$upscope $end\n\
                   $enddefinitions $end\n#0\nb0 !\n";
        let doc = parse(src).expect("valid");
        assert_eq!(
            doc.var_named("words").expect("words").scope,
            vec!["vta", "bus"]
        );
    }
}
