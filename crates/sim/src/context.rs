//! The process-side API: everything a running process may do.

use std::fmt;
use std::sync::Arc;

use crossbeam::channel::{Receiver, Sender};

use crate::error::{SimError, SimResult};
use crate::event::{Event, EventId};
use crate::kernel::{ProcId, Resume, Shared, YieldMsg};
use crate::time::SimTime;

/// Handle a process uses to interact with the simulation kernel.
///
/// A `Context` is passed to every process body. All blocking operations
/// return [`SimError::Terminated`] once the simulation is shutting down;
/// process bodies should propagate that with `?` so their threads unwind
/// cleanly.
pub struct Context {
    pid: ProcId,
    name: Arc<str>,
    shared: Arc<Shared>,
    resume_rx: Receiver<Resume>,
    yield_tx: Sender<YieldMsg>,
}

impl fmt::Debug for Context {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Context")
            .field("pid", &self.pid)
            .field("name", &self.name)
            .finish()
    }
}

impl Context {
    pub(crate) fn new(
        pid: ProcId,
        name: Arc<str>,
        shared: Arc<Shared>,
        resume_rx: Receiver<Resume>,
        yield_tx: Sender<YieldMsg>,
    ) -> Self {
        Context {
            pid,
            name,
            shared,
            resume_rx,
            yield_tx,
        }
    }

    pub(crate) fn recv_resume(&self) -> Result<Resume, crossbeam::channel::RecvError> {
        self.resume_rx.recv()
    }

    /// The identity of this process (used by arbiters as client id).
    pub fn pid(&self) -> ProcId {
        self.pid
    }

    /// The process name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.shared.state.lock().now
    }

    /// Creates a named event from within a process.
    pub fn event(&self, name: &str) -> Event {
        let id = self.shared.state.lock().new_event(name);
        Event {
            id,
            shared: Arc::clone(&self.shared),
        }
    }

    /// Spawns a new process; it becomes runnable within the current
    /// evaluation phase at the current simulation time.
    pub fn spawn<F>(&self, name: &str, body: F)
    where
        F: FnOnce(&Context) -> SimResult<()> + Send + 'static,
    {
        self.shared
            .state
            .lock()
            .queue_spawn(name.to_string(), Box::new(body));
    }

    /// Suspends this process for `t` of simulated time.
    ///
    /// `wait(SimTime::ZERO)` yields and resumes at the same time instant
    /// after all currently runnable processes have run.
    ///
    /// # Errors
    ///
    /// [`SimError::Terminated`] when the simulation is shutting down.
    pub fn wait(&self, t: SimTime) -> SimResult<()> {
        {
            let mut st = self.shared.state.lock();
            if st.ended {
                return Err(SimError::Terminated);
            }
            let gen = st.begin_wait(self.pid);
            let at = st.now.saturating_add(t);
            st.schedule_proc(self.pid, gen, at);
        }
        self.block()
    }

    /// Suspends this process until `event` is notified.
    ///
    /// # Errors
    ///
    /// [`SimError::Terminated`] when the simulation is shutting down.
    pub fn wait_event(&self, event: &Event) -> SimResult<()> {
        {
            let mut st = self.shared.state.lock();
            if st.ended {
                return Err(SimError::Terminated);
            }
            let gen = st.begin_wait(self.pid);
            st.register_waiter(self.pid, gen, event.id);
        }
        self.block()
    }

    /// Suspends until any of `events` fires; returns the winner's id.
    ///
    /// # Errors
    ///
    /// [`SimError::Terminated`] when the simulation is shutting down.
    ///
    /// # Panics
    ///
    /// Panics if `events` is empty.
    pub fn wait_any(&self, events: &[&Event]) -> SimResult<EventId> {
        assert!(!events.is_empty(), "wait_any needs at least one event");
        {
            let mut st = self.shared.state.lock();
            if st.ended {
                return Err(SimError::Terminated);
            }
            let gen = st.begin_wait(self.pid);
            for ev in events {
                st.register_waiter(self.pid, gen, ev.id);
            }
        }
        self.block()?;
        let st = self.shared.state.lock();
        Ok(st
            .wake_reason(self.pid)
            .expect("event wakeup carries its id"))
    }

    /// Suspends until `event` fires or `timeout` elapses; returns whether
    /// the event fired (`false` means the timeout expired first).
    ///
    /// # Exact-deadline tie-break
    ///
    /// When the event is notified at exactly `now + timeout`, the event
    /// **wins**: the kernel delivers timed event notifications before
    /// timed process wakeups within one instant, so this returns
    /// `Ok(true)` regardless of the order in which the notification and
    /// the deadline were scheduled. Reliable-transport layers (the
    /// `osss-vta` retry policy) depend on this pinned ordering — a
    /// response landing on the deadline counts as delivered,
    /// deterministically.
    ///
    /// # Errors
    ///
    /// [`SimError::Terminated`] when the simulation is shutting down.
    pub fn wait_event_timeout(&self, event: &Event, timeout: SimTime) -> SimResult<bool> {
        {
            let mut st = self.shared.state.lock();
            if st.ended {
                return Err(SimError::Terminated);
            }
            let gen = st.begin_wait(self.pid);
            st.register_waiter(self.pid, gen, event.id);
            let at = st.now.saturating_add(timeout);
            st.schedule_proc(self.pid, gen, at);
        }
        self.block()?;
        let st = self.shared.state.lock();
        Ok(st.wake_reason(self.pid).is_some())
    }

    /// Delta-notifies `event`: waiters resume in the next delta cycle at the
    /// current simulation time.
    pub fn notify(&self, event: &Event) {
        self.shared.state.lock().notify_delta(event.id);
    }

    /// Immediately notifies `event`: waiters become runnable within the
    /// current evaluation phase.
    pub fn notify_now(&self, event: &Event) {
        self.shared.state.lock().fire_event(event.id);
    }

    /// Notifies `event` after `t` of simulated time.
    pub fn notify_after(&self, event: &Event, t: SimTime) {
        let mut st = self.shared.state.lock();
        let at = st.now.saturating_add(t);
        st.schedule_event(event.id, at);
    }

    pub(crate) fn shared(&self) -> &Arc<Shared> {
        &self.shared
    }

    fn block(&self) -> SimResult<()> {
        self.yield_tx
            .send(YieldMsg::Waiting)
            .map_err(|_| SimError::Terminated)?;
        match self.resume_rx.recv() {
            Ok(Resume::Go) => Ok(()),
            Ok(Resume::Terminate) | Err(_) => Err(SimError::Terminated),
        }
    }
}
