//! Property-based tests of kernel invariants: determinism, time
//! monotonicity, FIFO order preservation and primitive conservation laws.

use proptest::prelude::*;

use osss_sim::prim::{Fifo, Semaphore};
use osss_sim::{SimTime, Simulation};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Time arithmetic: unit constructors scale consistently and
    /// addition is associative/commutative over random operands.
    #[test]
    fn time_arithmetic_laws(a in 0u64..1_000_000, b in 0u64..1_000_000, c in 0u64..1_000_000) {
        let (ta, tb, tc) = (SimTime::ns(a), SimTime::ns(b), SimTime::ns(c));
        prop_assert_eq!(ta + tb, tb + ta);
        prop_assert_eq!((ta + tb) + tc, ta + (tb + tc));
        prop_assert_eq!(SimTime::us(a), SimTime::ns(a * 1_000));
        prop_assert_eq!((ta + tb).checked_sub(tb), Some(ta));
    }

    /// A FIFO delivers every item exactly once, in order, regardless of
    /// capacity and of the relative producer/consumer pacing.
    #[test]
    fn fifo_preserves_order_and_items(
        capacity in 1usize..8,
        items in proptest::collection::vec(any::<u32>(), 1..64),
        producer_delay in 0u64..50,
        consumer_delay in 0u64..50,
    ) {
        let mut sim = Simulation::new();
        let fifo = Fifo::new(&mut sim, "f", capacity);
        let tx = fifo.clone();
        let send = items.clone();
        sim.spawn_process("producer", move |ctx| {
            for v in send {
                ctx.wait(SimTime::ns(producer_delay))?;
                tx.write(ctx, v)?;
            }
            Ok(())
        });
        let rx = fifo.clone();
        let expect = items.clone();
        sim.spawn_process("consumer", move |ctx| {
            for (i, want) in expect.into_iter().enumerate() {
                ctx.wait(SimTime::ns(consumer_delay))?;
                let got = rx.read(ctx)?;
                assert_eq!(got, want, "item {i}");
            }
            Ok(())
        });
        let report = sim.run().unwrap();
        report.expect_all_finished().unwrap();
        prop_assert!(fifo.is_empty());
    }

    /// Identical models simulate identically (determinism): run the same
    /// random task set twice and compare end times and delta counts.
    #[test]
    fn simulation_is_deterministic(
        tasks in proptest::collection::vec((1u64..100, 1usize..6), 1..8),
    ) {
        let run = |tasks: &[(u64, usize)]| {
            let mut sim = Simulation::new();
            for (i, &(delay, steps)) in tasks.iter().enumerate() {
                sim.spawn_process(&format!("p{i}"), move |ctx| {
                    for _ in 0..steps {
                        ctx.wait(SimTime::ns(delay))?;
                    }
                    Ok(())
                });
            }
            let r = sim.run().unwrap();
            (r.end_time, r.delta_cycles, r.finished)
        };
        prop_assert_eq!(run(&tasks), run(&tasks));
    }

    /// Semaphore conservation: permits out = permits in, and peak
    /// concurrency never exceeds the permit count.
    #[test]
    fn semaphore_bounds_concurrency(
        permits in 1usize..5,
        workers in 1usize..10,
        hold_ns in 1u64..100,
    ) {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let active = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let mut sim = Simulation::new();
        let sem = Semaphore::new(&mut sim, "s", permits);
        for i in 0..workers {
            let sem = sem.clone();
            let active = Arc::clone(&active);
            let peak = Arc::clone(&peak);
            sim.spawn_process(&format!("w{i}"), move |ctx| {
                sem.acquire(ctx)?;
                let now = active.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                ctx.wait(SimTime::ns(hold_ns))?;
                active.fetch_sub(1, Ordering::SeqCst);
                sem.release(ctx);
                Ok(())
            });
        }
        sim.run().unwrap().expect_all_finished().unwrap();
        prop_assert_eq!(sem.available(), permits);
        prop_assert!(peak.load(std::sync::atomic::Ordering::SeqCst) <= permits);
    }

    /// Timed wakeups happen in global time order: a process observing the
    /// wakeups of N peers sees a sorted sequence.
    #[test]
    fn wakeups_are_time_ordered(delays in proptest::collection::vec(1u64..1000, 2..12)) {
        use std::sync::{Arc, Mutex};
        let log: Arc<Mutex<Vec<SimTime>>> = Arc::new(Mutex::new(Vec::new()));
        let mut sim = Simulation::new();
        for (i, &d) in delays.iter().enumerate() {
            let log = Arc::clone(&log);
            sim.spawn_process(&format!("p{i}"), move |ctx| {
                ctx.wait(SimTime::ns(d))?;
                log.lock().unwrap().push(ctx.now());
                Ok(())
            });
        }
        sim.run().unwrap();
        let log = log.lock().unwrap();
        prop_assert!(log.windows(2).all(|w| w[0] <= w[1]));
        prop_assert_eq!(log.len(), delays.len());
    }
}
