//! Offline shim for the `parking_lot` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the tiny API surface it actually uses: a `Mutex`
//! whose `lock()` returns the guard directly (no `Result`). Poisoning
//! is deliberately ignored — parking_lot has no poisoning, and the
//! simulation kernel relies on being able to keep locking after a
//! process thread panics during teardown.

use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard};

pub struct Mutex<T: ?Sized>(StdMutex<T>);

pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn survives_panic_while_held() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }
}
