//! Offline shim for the `proptest` crate.
//!
//! Re-implements the macro surface and strategy combinators this
//! workspace's property tests use, over the deterministic `rand` shim.
//! Unlike upstream proptest there is no shrinking and no failure
//! persistence: a failing case panics with the case index, and the
//! whole run is reproducible because case seeds are derived from the
//! fully-qualified test name plus the case number.
//!
//! Supported strategies: integer/float ranges, `any::<T>()`,
//! `collection::vec(strategy, size)`, and tuples up to arity 4.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-case RNG handed to strategies. Deterministic: seeded from the
/// test's module path + name and the case index.
pub struct TestRng(StdRng);

impl TestRng {
    pub fn deterministic(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h ^ ((case as u64) << 32 | 0x9e37)))
    }

    fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// Harness configuration (subset: case count).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values. Strategies are sampled by reference so that
/// non-`Copy` range strategies can drive many cases.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Type-erases the strategy behind a cheaply cloneable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(std::sync::Arc::new(self))
    }

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> strategy::Map<Self, F>
    where
        Self: Sized,
    {
        strategy::Map { inner: self, f }
    }

    /// Recursive strategies: `self` is the leaf, `recurse` builds one
    /// level from an inner strategy. The depth budget is enforced by
    /// construction (each level mixes leaves back in, and the deepest
    /// inner strategy is leaves-only), so generation always terminates;
    /// `_desired_size`/`_expected_branch` only shape upstream's size
    /// heuristics and are ignored here.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let inner = strategy::Union::new(vec![leaf.clone(), cur]).boxed();
            cur = recurse(inner).boxed();
        }
        strategy::Union::new(vec![leaf, cur]).boxed()
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.rng().gen_range(self.clone())
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        rng.rng().gen_range(self.clone())
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Cheaply cloneable type-erased strategy (upstream's `BoxedStrategy`).
pub struct BoxedStrategy<T>(std::sync::Arc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(std::sync::Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

pub mod strategy {
    pub use super::{BoxedStrategy, Just};
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Uniform choice between same-valued strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.rng().gen_range(0..self.options.len());
            self.options[i].sample(rng)
        }
    }

    /// `strategy.prop_map(f)`.
    pub struct Map<S, F> {
        pub(super) inner: S,
        pub(super) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }
}

/// Marker for types `any::<T>()` can produce.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_full_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.rng().gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_full_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng().gen::<bool>()
    }
}

/// Strategy producing any value of `T` (uniform over the whole type).
pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($name:ident . $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_strategy_tuple! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
}

/// Collection sizes: a fixed length or a half-open range of lengths.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use rand::Rng;

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.rng().gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
    pub use crate::{Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestRng};
}

/// Assertion macros. Upstream these return `Err` for shrinking; the
/// shim has no shrinking, so they panic like their `assert_*` cousins.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when the assumption fails. Works because the
/// case body runs inside a closure — `return` abandons only this case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return;
        }
    };
}

/// Uniform choice among strategies with a common value type. Upstream's
/// optional `weight =>` prefixes are not supported.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// The `proptest!` block macro: expands each property into a plain
/// `#[test]` fn that samples its strategies `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut __proptest_rng = $crate::TestRng::deterministic(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(
                        let $arg = $crate::Strategy::sample(&($strat), &mut __proptest_rng);
                    )+
                    let run = || $body;
                    run();
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name( $($arg in $strat),+ ) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -5i32..=5, f in 0.5f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-5..=5).contains(&y));
            prop_assert!((0.5..2.0).contains(&f));
        }

        #[test]
        fn vec_sizes_respect_range(
            v in crate::collection::vec(0u32..100, 2..7),
            fixed in crate::collection::vec(any::<bool>(), 64),
        ) {
            prop_assert!((2..7).contains(&v.len()));
            prop_assert_eq!(fixed.len(), 64);
            prop_assert!(v.iter().all(|&e| e < 100));
        }

        #[test]
        fn tuples_sample_elementwise(
            t in crate::collection::vec((-500i64..500, 0u64..10), 1..4),
        ) {
            for (a, b) in t {
                prop_assert!((-500..500).contains(&a));
                prop_assert!(b < 10);
            }
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let sample = |case| {
            let mut rng = TestRng::deterministic("t", case);
            (0u64..1000).sample(&mut rng)
        };
        assert_eq!(sample(0), sample(0));
        assert_ne!(
            (0..16).map(sample).collect::<Vec<_>>(),
            (1..17).map(sample).collect::<Vec<_>>()
        );
    }
}
