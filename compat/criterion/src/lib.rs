//! Offline shim for the `criterion` crate.
//!
//! A minimal wall-clock harness with the same authoring API
//! (`criterion_group!`, `criterion_main!`, `benchmark_group`,
//! `bench_function`, `b.iter(..)`). Per benchmark it runs one warm-up
//! iteration, then `sample_size` timed samples, and prints
//! min/mean/max to stdout. No statistics, plots, or baselines — but
//! the numbers are honest wall-clock timings, so relative comparisons
//! (e.g. the parallel-decode scaling bench) are meaningful.
//!
//! When invoked with `--test` (as `cargo test` does for bench targets
//! with the default `test = true`) every benchmark runs exactly once,
//! as a smoke test.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Declared throughput of a benchmark (printed, not otherwise used).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[derive(Clone, Copy, Debug, Default)]
enum RunMode {
    #[default]
    Bench,
    /// `--test`: run each benchmark body once, don't measure.
    Smoke,
}

pub struct Criterion {
    mode: RunMode,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut mode = RunMode::Bench;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => mode = RunMode::Smoke,
                "--bench" => mode = RunMode::Bench,
                s if !s.starts_with('-') => filter = Some(s.to_string()),
                _ => {}
            }
        }
        Criterion { mode, filter }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut group = self.benchmark_group(id.clone());
        group.bench_function(id, f);
        group.finish();
        self
    }
}

pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            samples: Vec::new(),
            smoke: matches!(self.criterion.mode, RunMode::Smoke),
        };
        match self.criterion.mode {
            RunMode::Smoke => {
                f(&mut b);
                println!("{full}: ok (smoke)");
            }
            RunMode::Bench => {
                // One warm-up call, then `sample_size` measured samples.
                f(&mut b);
                b.samples.clear();
                for _ in 0..self.sample_size {
                    f(&mut b);
                }
                let n = b.samples.len().max(1);
                let total: Duration = b.samples.iter().sum();
                let mean = total / n as u32;
                let min = b.samples.iter().min().copied().unwrap_or_default();
                let max = b.samples.iter().max().copied().unwrap_or_default();
                let thr = match self.throughput {
                    Some(Throughput::Elements(e)) if !mean.is_zero() => {
                        format!("  {:.1} elem/s", e as f64 / mean.as_secs_f64())
                    }
                    Some(Throughput::Bytes(by)) if !mean.is_zero() => {
                        format!(
                            "  {:.1} MiB/s",
                            by as f64 / mean.as_secs_f64() / (1 << 20) as f64
                        )
                    }
                    _ => String::new(),
                };
                println!("{full}: mean {mean:?}  min {min:?}  max {max:?}  ({n} samples){thr}");
            }
        }
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    samples: Vec<Duration>,
    smoke: bool,
}

impl Bencher {
    /// Times one sample of `f` (a single call per sample).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        if !self.smoke {
            self.samples.push(start.elapsed());
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion {
            mode: RunMode::Bench,
            filter: None,
        };
        let mut calls = 0usize;
        let mut group = c.benchmark_group("g");
        group.sample_size(3).bench_function("id", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn smoke_mode_runs_once() {
        let mut c = Criterion {
            mode: RunMode::Smoke,
            filter: None,
        };
        let mut calls = 0usize;
        let mut group = c.benchmark_group("g");
        group.bench_function("id", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        group.finish();
        assert_eq!(calls, 1);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            mode: RunMode::Bench,
            filter: Some("other".into()),
        };
        let mut calls = 0usize;
        let mut group = c.benchmark_group("g");
        group.bench_function("id", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        group.finish();
        assert_eq!(calls, 0);
    }
}
