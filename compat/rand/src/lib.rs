//! Offline shim for the `rand` crate (0.8-era API subset).
//!
//! Provides `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the
//! `Rng` methods the workspace uses (`gen`, `gen_range`, `gen_bool`).
//! The generator is xoshiro256** seeded via splitmix64 — deterministic
//! across platforms, which is exactly what the synthetic-image
//! constructors and the property tests need. The streams differ from
//! upstream `StdRng` (ChaCha12), so seeds don't reproduce upstream
//! sequences — no test in this workspace depends on those.

pub mod rngs {
    /// Deterministic xoshiro256** generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn from_u64(seed: u64) -> Self {
            // splitmix64 stream to fill the state, per the xoshiro
            // authors' recommendation.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }

        pub(crate) fn next_u64_impl(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Seedable construction (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng::from_u64(seed)
    }
}

/// Raw 64-bit output.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl RngCore for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next_u64_impl()
    }
}

/// Values `gen()` can produce from the "standard" distribution.
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                let v = rng.next_u64() % span;
                (self.start as $wide).wrapping_add(v as $wide) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let v = rng.next_u64() % (span + 1);
                (lo as $wide).wrapping_add(v as $wide) as $t
            }
        }
    )*};
}
impl_range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = f64::sample_standard(rng);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = f32::sample_standard(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// User-facing convenience methods, rand-0.8 style.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(-1000i32..1000);
            assert!((-1000..1000).contains(&v));
            let u = rng.gen_range(1usize..=8);
            assert!((1..=8).contains(&u));
            let f = rng.gen_range(-200.0f64..200.0);
            assert!((-200.0..200.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(0);
        let mut b = StdRng::seed_from_u64(1);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }
}
