//! Offline shim for the `bytes` crate.
//!
//! Implements the subset the VTA serialisation layer uses: `BytesMut`
//! as a growable write buffer (`BufMut` big-endian putters, `resize`,
//! `freeze`), and `Bytes` as a cheap-to-clone consuming read view
//! (`Buf` big-endian getters, `slice`). Wire format matches the real
//! crate (network byte order), so serialised traces stay comparable.

use std::ops::{Bound, RangeBounds};
use std::sync::Arc;

/// Growable byte buffer for writing.
#[derive(Default, Debug, Clone, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

/// Immutable, cheaply cloneable view of a byte buffer; reads consume
/// from the front.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.data.resize(new_len, value);
    }

    pub fn extend_from_slice(&mut self, slice: &[u8]) {
        self.data.extend_from_slice(slice);
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from_vec(self.data)
    }
}

impl Bytes {
    fn from_vec(data: Vec<u8>) -> Self {
        let data: Arc<[u8]> = data.into();
        Bytes {
            start: 0,
            end: data.len(),
            data,
        }
    }

    pub fn copy_from_slice(slice: &[u8]) -> Self {
        Bytes::from_vec(slice.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Sub-view relative to the current (unconsumed) view.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of range");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

/// Read side: big-endian getters that consume from the front.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn take_bytes(&mut self, n: usize) -> &[u8];

    fn get_u8(&mut self) -> u8 {
        self.take_bytes(1)[0]
    }
    fn get_u16(&mut self) -> u16 {
        u16::from_be_bytes(self.take_bytes(2).try_into().unwrap())
    }
    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take_bytes(4).try_into().unwrap())
    }
    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.take_bytes(8).try_into().unwrap())
    }
    fn get_i32(&mut self) -> i32 {
        i32::from_be_bytes(self.take_bytes(4).try_into().unwrap())
    }
    fn get_i64(&mut self) -> i64 {
        i64::from_be_bytes(self.take_bytes(8).try_into().unwrap())
    }
    fn get_f64(&mut self) -> f64 {
        f64::from_be_bytes(self.take_bytes(8).try_into().unwrap())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take_bytes(&mut self, n: usize) -> &[u8] {
        assert!(n <= self.len(), "buffer underrun");
        let at = self.start;
        self.start += n;
        &self.data[at..at + n]
    }
}

/// Write side: big-endian putters.
pub trait BufMut {
    fn put_slice(&mut self, slice: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_i32(&mut self, v: i32) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_f64(&mut self, v: f64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, slice: &[u8]) {
        self.data.extend_from_slice(slice);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip_big_endian() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u8(0xAB);
        w.put_u32(0xDEAD_BEEF);
        w.put_i64(-42);
        w.put_f64(3.5);
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 1 + 4 + 8 + 8);
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_i64(), -42);
        assert_eq!(r.get_f64(), 3.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slice_is_relative_to_view() {
        let mut w = BytesMut::new();
        w.put_slice(&[0, 1, 2, 3, 4, 5]);
        let mut b = w.freeze();
        assert_eq!(b.get_u8(), 0);
        let s = b.slice(1..3);
        assert_eq!(s.as_slice(), &[2, 3]);
    }

    #[test]
    fn wire_format_is_network_order() {
        let mut w = BytesMut::new();
        w.put_u16(0x0102);
        assert_eq!(w.freeze().as_slice(), &[0x01, 0x02]);
    }
}
