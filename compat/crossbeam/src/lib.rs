//! Offline shim for the `crossbeam` crate.
//!
//! Only `crossbeam::channel::{bounded, Sender, Receiver, RecvError,
//! SendError}` are provided, backed by `std::sync::mpsc::sync_channel`.
//! The simulation kernel uses exactly one sender and one receiver per
//! process thread, so the std primitives are a faithful substitute.

pub mod channel {
    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, SendError};

    pub struct Sender<T>(mpsc::SyncSender<T>);

    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.0.try_recv()
        }
    }

    /// Creates a bounded channel with capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn bounded_roundtrip() {
        let (tx, rx) = channel::bounded::<u32>(1);
        tx.send(42).unwrap();
        assert_eq!(rx.recv().unwrap(), 42);
    }

    #[test]
    fn recv_after_sender_drop_errors() {
        let (tx, rx) = channel::bounded::<u32>(1);
        drop(tx);
        assert!(rx.recv().is_err());
    }
}
