//! # osss-jpeg2000 — facade crate
//!
//! Reproduction of *"SystemC-based Modelling, Seamless Refinement, and
//! Synthesis of a JPEG 2000 Decoder"* (DATE 2008) as a Rust workspace.
//! This crate re-exports the workspace members under one roof:
//!
//! * [`sim`] — deterministic discrete-event kernel (SystemC substitute)
//! * [`osss`] — OSSS Application Layer (shared objects, EET blocks, tasks)
//! * [`vta`] — Virtual Target Architecture layer (processors, buses,
//!   channels, RMI, memories)
//! * [`fossy`] — synthesis flow (IR, passes, VHDL/C/MHS/MSS emitters,
//!   Virtex-4 estimator)
//! * [`jpeg2000`] — the complete JPEG 2000 codec
//! * [`models`] — the nine case-study decoder models and the paper's
//!   experiments
//!
//! See `examples/quickstart.rs` for a five-minute tour and DESIGN.md /
//! EXPERIMENTS.md for the reproduction methodology.
//!
//! ## Example
//!
//! ```
//! use osss_jpeg2000::sim::{Simulation, SimTime};
//! use osss_jpeg2000::osss::{SharedObject, sched::Fcfs};
//!
//! # fn main() -> Result<(), osss_jpeg2000::sim::SimError> {
//! let mut sim = Simulation::new();
//! let so = SharedObject::new(&mut sim, "co_processor", 0u32, Fcfs::new());
//! let so2 = so.clone();
//! sim.spawn_process("client", move |ctx| {
//!     so2.call(ctx, |state, ctx| {
//!         *state += 1;
//!         ctx.wait(SimTime::us(10))
//!     })
//! });
//! assert_eq!(sim.run()?.end_time, SimTime::us(10));
//! # Ok(())
//! # }
//! ```

pub use fossy;
pub use jpeg2000;
pub use jpeg2000_models as models;
pub use osss_core as osss;
pub use osss_sim as sim;
pub use osss_vta as vta;

pub use jpeg2000::chaos::{ChaosConfig, ChaosProxy, ChaosProxyStats, ChaosStats};
pub use jpeg2000::codec::{decode_tolerant, DecodeReport, DecodeStage, TileFailure};
pub use jpeg2000::error::{CodecError, ErrorSite};
pub use jpeg2000::net::{
    CircuitBreaker, CircuitState, Client, NetError, NetResponse, NetRetryPolicy, WireError,
    WireReport,
};
pub use jpeg2000::parallel::{
    decode_parallel, decode_parallel_observed, decode_tolerant_parallel, ParallelDecoder,
    ParallelStats,
};
pub use jpeg2000::scratch::{DecodeCounters, DecodeScratch};
pub use jpeg2000::server::{DecodeServer, ServerConfig, ServerStats};
pub use jpeg2000::service::{
    DecodeService, Request, RequestKind, ServedFrom, ServiceConfig, ServiceError, ServiceResponse,
    ServiceStats, Ticket,
};
pub use jpeg2000_models::observe::{
    derive_from_trace, run_version_observed, ObservedRun, TraceDerived,
};
pub use osss_sim::probe::{MetricsRegistry, MetricsSnapshot};
pub use osss_sim::trace::{TraceRecord, Tracer};

/// Decodes a codestream with the tile-parallel backend, `n` worker
/// pipelines (`0` = automatic). Bit-exact with
/// [`jpeg2000::codec::decode`]; see [`jpeg2000::parallel`] for how the
/// worker count mirrors the paper's model versions 2–5.
///
/// # Errors
///
/// Any [`jpeg2000::error::CodecError`] from parsing or entropy
/// decoding.
pub fn decode_workers(
    bytes: &[u8],
    n: usize,
) -> Result<jpeg2000::codec::DecodedImage, jpeg2000::error::CodecError> {
    ParallelDecoder::new().workers(n).decode(bytes)
}

/// Tolerantly decodes a codestream with `n` worker pipelines (`0` =
/// automatic): corrupt tiles become mid-gray regions reported in the
/// [`DecodeReport`] instead of failing the decode. The sequential form
/// is [`decode_tolerant`].
///
/// # Errors
///
/// Main-header failures only — see [`jpeg2000::codec::decode_tolerant`].
pub fn decode_tolerant_workers(
    bytes: &[u8],
    n: usize,
) -> Result<(jpeg2000::image::Image, DecodeReport), CodecError> {
    decode_tolerant_parallel(bytes, n)
}
