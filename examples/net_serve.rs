//! The network decode server end to end: a `DecodeServer` fronts the
//! persistent service over loopback TCP, a blocking `Client` decodes
//! the Table-1 streams through the framed CRC-checked protocol, a
//! flood against a tiny queue turns into explicit retryable-busy
//! frames, and the `server.*` / `service.*` metric families reconcile
//! in the unified registry.
//!
//! Run with: `cargo run --release --example net_serve`

use osss_jpeg2000::models::workload::workload;
use osss_jpeg2000::models::ModeSel;
use osss_jpeg2000::sim::probe::MetricsRegistry;
use osss_jpeg2000::{
    Client, DecodeServer, DecodeService, NetError, NetRetryPolicy, Request, ServerConfig,
    ServiceConfig,
};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let lossless = workload(ModeSel::Lossless);
    let lossy = workload(ModeSel::Lossy);
    let reg = MetricsRegistry::new();

    // A deliberately tight service: 1 worker, queue of 2, no caches —
    // small enough that backpressure demonstrably reaches network
    // clients.
    let service = Arc::new(DecodeService::new(ServiceConfig {
        workers: 1,
        queue_capacity: 2,
        header_cache_bytes: 0,
        image_cache_bytes: 0,
        metrics: Some(reg.clone()),
    }));
    let server = DecodeServer::start(
        Arc::clone(&service),
        "127.0.0.1:0",
        ServerConfig {
            handler_threads: 8,
            submit_timeout: Duration::from_millis(1),
            metrics: Some(reg.clone()),
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();
    println!("decode server listening on {addr}");

    // --- Bit-exact networked decode ---------------------------------
    let mut client = Client::connect(addr).expect("connect");
    for (name, wl) in [("lossless", &lossless), ("lossy", &lossy)] {
        let resp = client
            .request(&Request::strict(), &wl.codestream)
            .expect("networked strict decode");
        assert_eq!(
            resp.image, *wl.reference,
            "network round-trip must be bit-exact"
        );
        println!(
            "{name}: {}x{}x{} decoded over TCP, served {:?}, bit-exact",
            resp.image.width,
            resp.image.height,
            resp.image.num_components(),
            resp.served_from
        );
    }

    // --- Tolerant decode carries its report -------------------------
    let resp = client
        .request(&Request::tolerant(), &lossy.codestream)
        .expect("tolerant decode");
    let report = resp.report.expect("tolerant responses carry a report");
    println!(
        "tolerant: {} isolated failures reported over the wire",
        report.failures.len()
    );

    // --- Backpressure over the network ------------------------------
    // A burst of concurrent clients against the 2-slot queue: every
    // request resolves as an image or an explicit retryable-busy frame
    // — nothing hangs, nothing is reset.
    let outcomes: Vec<&str> = std::thread::scope(|scope| {
        (0..8)
            .map(|i| {
                let stream = &lossy.codestream;
                scope.spawn(move || {
                    let mut c = Client::connect(addr).expect("connect");
                    match c.request(&Request::strict(), stream) {
                        Ok(_) => "ok",
                        Err(NetError::Busy) => "busy",
                        Err(e) => panic!("burst client {i}: unexpected {e}"),
                    }
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("burst client"))
            .collect()
    });
    let busy = outcomes.iter().filter(|o| **o == "busy").count();
    println!("burst: {busy}/8 requests answered retryable-busy");

    // --- Retry-with-backoff absorbs the busy answers ----------------
    let mut retrier = Client::connect(addr).expect("connect");
    let resp = retrier
        .decode_retry(
            &Request::strict(),
            &lossless.codestream,
            &NetRetryPolicy::default(),
        )
        .expect("retry client must eventually decode");
    assert_eq!(
        *resp.image.components[0].data,
        *lossless.reference.components[0].data
    );
    println!("retry client: decoded after deterministic backoff");

    // --- Accounting -------------------------------------------------
    drop(client);
    drop(retrier);
    let server_stats = server.shutdown();
    assert!(
        server_stats.reconciles(),
        "server outcomes partition frames"
    );
    let service_stats = Arc::try_unwrap(service)
        .ok()
        .expect("server released its handle")
        .shutdown();
    assert!(
        service_stats.reconciles(),
        "service outcomes partition submissions"
    );
    assert_eq!(
        service_stats.submitted + service_stats.coalesced,
        server_stats.ok + server_stats.expired + server_stats.failed + server_stats.internal,
        "one service submission or coalesce per admitted network request"
    );
    println!(
        "\nserver: frames {}/{}, ok={} busy={} conn_rejected={} crc_rejects={}",
        server_stats.frames_in,
        server_stats.frames_out,
        server_stats.ok,
        server_stats.busy,
        server_stats.conn_rejected,
        server_stats.crc_rejects,
    );
    println!("\nmetrics registry snapshot:\n{}", reg.to_json());
}
