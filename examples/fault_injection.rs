//! Transport fault injection: decoding over an unreliable OPB bus.
//!
//! Sweeps the Table-1 workload across rising transport fault rates. The
//! reliable RMI protocol (CRC framing + timeout/retry/backoff) absorbs
//! moderate rates bit-exactly; past the retry budget, tiles degrade to
//! mid-gray individually — the decode never fails outright.
//!
//! Run with: `cargo run --release --example fault_injection`

use osss_jpeg2000::models::report::format_fault_sweep;
use osss_jpeg2000::models::{fault_axis, fault_sweep, ModeSel};

fn main() {
    let mode = ModeSel::Lossless;
    let seed = 42;
    println!("Fault-injection sweep, {mode} mode, seed {seed}");
    println!();
    let points = fault_axis(seed);
    let results = fault_sweep(mode, &points).expect("simulation");
    print!("{}", format_fault_sweep(&results));
    println!();
    println!("Reading the table:");
    println!("  The CRC trailer costs 4 words per invocation — goodput stays ~100%");
    println!("  at rate 0. Rising drop/flip rates burn frames (goodput falls) and");
    println!("  simulated time (deadline + backoff waits), but every tile the retry");
    println!("  budget can save is delivered bit-exactly. The last row cuts the");
    println!("  budget to one retry at a 50% loss rate: abandoned tiles render as");
    println!("  mid-gray blocks while the rest of the image stays intact.");
    let heavy = results.last().expect("axis is non-empty");
    println!();
    println!(
        "  Heavy-loss row detail: {} recovered, {} degraded of 16 tiles; \
         {} retries, {} timeouts, {} CRC rejections.",
        heavy.tiles_recovered,
        heavy.tiles_degraded,
        heavy.rmi_stats.retries,
        heavy.rmi_stats.timeouts,
        heavy.rmi_stats.crc_failures
    );
    assert!(
        results.iter().all(|r| r.image_ok),
        "every run must deliver exactly the recovered-plus-mid-gray image"
    );
}
