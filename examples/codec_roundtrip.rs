//! Codec roundtrip: encode a synthetic image on both the lossless and
//! lossy paths, decode it, and print compression and quality figures plus
//! the per-stage decode profile (the Figure 1 shape).
//!
//! Run with: `cargo run --release --example codec_roundtrip`

use osss_jpeg2000::jpeg2000::codec::{decode, encode, EncodeParams, Mode};
use osss_jpeg2000::jpeg2000::image::Image;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let size = 256;
    let image = Image::synthetic_rgb(size, size, 42);
    let raw_bytes = size * size * 3;
    println!("Input: {size}×{size} RGB synthetic image ({raw_bytes} raw bytes)");
    println!();

    for (label, mode) in [
        ("lossless (5/3 + RCT)", Mode::Lossless),
        ("lossy    (9/7 + ICT)", Mode::lossy_default()),
    ] {
        let params = EncodeParams::new(mode).tile_size(64, 64);
        let stream = encode(&image, &params)?;
        let out = decode(&stream)?;
        let psnr = image.psnr(&out.image);
        let shares = out.timings.shares();
        println!("{label}:");
        println!(
            "  {} bytes ({:.2}:1), PSNR {}",
            stream.len(),
            raw_bytes as f64 / stream.len() as f64,
            if psnr.is_infinite() {
                "exact (bit-true)".to_string()
            } else {
                format!("{psnr:.1} dB")
            }
        );
        println!(
            "  decode profile: entropy {:.1}%  IQ {:.1}%  IDWT {:.1}%  ICT {:.1}%  DC {:.1}%",
            shares[0], shares[1], shares[2], shares[3], shares[4]
        );
        if mode == Mode::Lossless {
            assert_eq!(out.image, image, "lossless roundtrip must be exact");
        } else {
            assert!(psnr > 30.0, "lossy quality unexpectedly low");
        }
    }
    println!();
    println!("The entropy decoder dominates in both modes — the property the");
    println!("case study's hardware/software partitioning is built on.");
    Ok(())
}
