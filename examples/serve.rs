//! The persistent decode service end to end: a pool of long-lived
//! workers serves strict, tolerant, quality and thumbnail decodes of
//! the Table-1 streams, demonstrating the four serving paths (cold,
//! header-cached, image-cached, coalesced), explicit backpressure
//! (`QueueFull`), per-request deadlines, and the `service.*` metrics
//! the pool exports into the unified registry.
//!
//! Run with: `cargo run --release --example serve`

use osss_jpeg2000::jpeg2000::codec::{encode, EncodeParams, Mode};
use osss_jpeg2000::jpeg2000::image::Image;
use osss_jpeg2000::models::workload::workload;
use osss_jpeg2000::models::ModeSel;
use osss_jpeg2000::sim::probe::MetricsRegistry;
use osss_jpeg2000::{DecodeService, Request, ServedFrom, ServiceConfig, ServiceError};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let lossless = workload(ModeSel::Lossless);
    let lossy = workload(ModeSel::Lossy);
    let reg = MetricsRegistry::new();
    let service = DecodeService::new(ServiceConfig {
        workers: 2,
        queue_capacity: 8,
        metrics: Some(reg.clone()),
        ..ServiceConfig::default()
    });
    println!(
        "decode service up: {} workers, queue of 8",
        service.workers()
    );

    // --- The three serving paths -----------------------------------
    // Cold: first sight of the stream — full parse + decode.
    let cold = service
        .decode(&lossless.codestream[..], Request::strict())
        .expect("cold strict decode");
    assert_eq!(*cold.image, *lossless.reference, "service is bit-exact");
    assert_eq!(cold.served_from, ServedFrom::Cold);
    println!(
        "cold:         {:>9?} (queue wait {:?})",
        cold.service_time, cold.queue_wait
    );

    // Header-cached: same stream, different variant — the parsed
    // StagedDecoder is reused, only the pixel pipeline runs.
    let warm = service
        .decode(&lossless.codestream[..], Request::thumbnail(0))
        .expect("thumbnail via cached header");
    assert_eq!(warm.served_from, ServedFrom::HeaderCache);
    println!(
        "header-cache: {:>9?} ({}x{} thumbnail)",
        warm.service_time, warm.image.width, warm.image.height
    );

    // Image-cached: identical request — no decoding at all.
    let hot = service
        .decode(&lossless.codestream[..], Request::strict())
        .expect("repeat strict decode");
    assert_eq!(hot.served_from, ServedFrom::ImageCache);
    println!("image-cache:  {:>9?}", hot.service_time);

    // --- Deadlines --------------------------------------------------
    // A deadline no decode can meet: the request resolves with
    // DeadlineExceeded instead of burning a worker. (A fresh stream —
    // the cached ones would be served instantly from memory.)
    let doomed = service
        .decode(
            &lossy.codestream[..],
            Request::strict().with_timeout(Duration::from_nanos(1)),
        )
        .expect_err("a 1ns deadline must expire");
    assert_eq!(doomed, ServiceError::DeadlineExceeded);
    println!("deadline:     1ns budget -> {doomed}");

    // --- Backpressure -----------------------------------------------
    // Saturate the queue with a burst of *distinct* streams, without
    // waiting; once the queue is full, submits are refused explicitly
    // rather than queued unboundedly. (Distinct streams matter:
    // identical submissions would coalesce onto the in-flight decode
    // instead of consuming queue slots — see the next section.)
    let burst: Vec<Vec<u8>> = (0..32)
        .map(|i| {
            let img = Image::synthetic_rgb(48, 48, 7000 + i);
            encode(&img, &EncodeParams::new(Mode::Lossless)).expect("burst encode")
        })
        .collect();
    let mut tickets = Vec::new();
    let mut refused = 0usize;
    for bytes in &burst {
        match service.submit(&bytes[..], Request::tolerant()) {
            Ok(t) => tickets.push(t),
            Err(ServiceError::QueueFull) => refused += 1,
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    for t in tickets {
        let resp = t.wait().expect("queued tolerant decode");
        assert!(resp.report.expect("tolerant report").failures.is_empty());
    }
    println!("backpressure: {refused}/32 burst submissions refused with QueueFull");

    // --- Single-flight coalescing ------------------------------------
    // One worker, no image cache: while a decode of a hot stream is
    // queued or running, identical submissions attach to it as
    // *followers* instead of queueing duplicate work. Every follower
    // gets the same `Arc`'d image the leader decoded, tagged
    // `ServedFrom::Coalesced`; the stream is decoded exactly once.
    let single = DecodeService::new(ServiceConfig {
        workers: 1,
        queue_capacity: 4,
        image_cache_bytes: 0,
        ..ServiceConfig::default()
    });
    let filler = single
        .submit(&lossy.codestream[..], Request::tolerant())
        .expect("filler occupies the sole worker");
    let leader = single
        .submit(&lossless.codestream[..], Request::strict())
        .expect("leader queues the hot decode");
    let followers: Vec<_> = (0..3)
        .map(|_| {
            single
                .submit(&lossless.codestream[..], Request::strict())
                .expect("follower attaches to the in-flight decode")
        })
        .collect();
    filler.wait().expect("filler decode");
    let lead = leader.wait().expect("leader decode");
    assert_eq!(lead.served_from, ServedFrom::Cold);
    for f in followers {
        let resp = f.wait().expect("follower rides the leader's decode");
        assert_eq!(resp.served_from, ServedFrom::Coalesced);
        assert!(
            Arc::ptr_eq(&resp.image, &lead.image),
            "followers share the leader's buffer, not a copy"
        );
    }
    let sf = single.shutdown();
    println!(
        "coalescing:   4 identical submissions -> {} decode, coalesced={}",
        sf.image_misses - 1, // minus the filler's decode
        sf.coalesced,
    );

    // --- Accounting and metrics -------------------------------------
    let stats = service.shutdown();
    assert!(stats.reconciles(), "outcomes partition submissions");
    println!(
        "\nstats: submitted={} coalesced={} completed={} expired={} rejected={} \
         header hit/miss={}/{} image hit/miss={}/{} evictions={}",
        stats.submitted,
        stats.coalesced,
        stats.completed,
        stats.expired,
        stats.rejected,
        stats.header_hits,
        stats.header_misses,
        stats.image_hits,
        stats.image_misses,
        stats.header_evictions + stats.image_evictions,
    );
    println!("\nmetrics registry snapshot:\n{}", reg.to_json());
}
