//! The persistent decode service end to end: a pool of long-lived
//! workers serves strict, tolerant, quality and thumbnail decodes of
//! the Table-1 streams, demonstrating the three serving paths (cold,
//! header-cached, image-cached), explicit backpressure (`QueueFull`),
//! per-request deadlines, and the `service.*` metrics the pool exports
//! into the unified registry.
//!
//! Run with: `cargo run --release --example serve`

use osss_jpeg2000::models::workload::workload;
use osss_jpeg2000::models::ModeSel;
use osss_jpeg2000::sim::probe::MetricsRegistry;
use osss_jpeg2000::{DecodeService, Request, ServedFrom, ServiceConfig, ServiceError};
use std::time::Duration;

fn main() {
    let lossless = workload(ModeSel::Lossless);
    let lossy = workload(ModeSel::Lossy);
    let reg = MetricsRegistry::new();
    let service = DecodeService::new(ServiceConfig {
        workers: 2,
        queue_capacity: 8,
        metrics: Some(reg.clone()),
        ..ServiceConfig::default()
    });
    println!(
        "decode service up: {} workers, queue of 8",
        service.workers()
    );

    // --- The three serving paths -----------------------------------
    // Cold: first sight of the stream — full parse + decode.
    let cold = service
        .decode(&lossless.codestream[..], Request::strict())
        .expect("cold strict decode");
    assert_eq!(*cold.image, *lossless.reference, "service is bit-exact");
    assert_eq!(cold.served_from, ServedFrom::Cold);
    println!(
        "cold:         {:>9?} (queue wait {:?})",
        cold.service_time, cold.queue_wait
    );

    // Header-cached: same stream, different variant — the parsed
    // StagedDecoder is reused, only the pixel pipeline runs.
    let warm = service
        .decode(&lossless.codestream[..], Request::thumbnail(0))
        .expect("thumbnail via cached header");
    assert_eq!(warm.served_from, ServedFrom::HeaderCache);
    println!(
        "header-cache: {:>9?} ({}x{} thumbnail)",
        warm.service_time, warm.image.width, warm.image.height
    );

    // Image-cached: identical request — no decoding at all.
    let hot = service
        .decode(&lossless.codestream[..], Request::strict())
        .expect("repeat strict decode");
    assert_eq!(hot.served_from, ServedFrom::ImageCache);
    println!("image-cache:  {:>9?}", hot.service_time);

    // --- Deadlines --------------------------------------------------
    // A deadline no decode can meet: the request resolves with
    // DeadlineExceeded instead of burning a worker. (A fresh stream —
    // the cached ones would be served instantly from memory.)
    let doomed = service
        .decode(
            &lossy.codestream[..],
            Request::strict().with_timeout(Duration::from_nanos(1)),
        )
        .expect_err("a 1ns deadline must expire");
    assert_eq!(doomed, ServiceError::DeadlineExceeded);
    println!("deadline:     1ns budget -> {doomed}");

    // --- Backpressure -----------------------------------------------
    // Saturate the queue with tolerant decodes of the lossy stream,
    // without waiting; once the queue is full, submits are refused
    // explicitly rather than queued unboundedly.
    let mut tickets = Vec::new();
    let mut refused = 0usize;
    for _ in 0..64 {
        match service.submit(&lossy.codestream[..], Request::tolerant()) {
            Ok(t) => tickets.push(t),
            Err(ServiceError::QueueFull) => refused += 1,
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    for t in tickets {
        let resp = t.wait().expect("queued tolerant decode");
        assert!(resp.report.expect("tolerant report").failures.is_empty());
    }
    println!("backpressure: {refused}/64 burst submissions refused with QueueFull");

    // --- Accounting and metrics -------------------------------------
    let stats = service.shutdown();
    assert!(stats.reconciles(), "outcomes partition submissions");
    println!(
        "\nstats: submitted={} completed={} expired={} rejected={} \
         header hit/miss={}/{} image hit/miss={}/{} evictions={}",
        stats.submitted,
        stats.completed,
        stats.expired,
        stats.rejected,
        stats.header_hits,
        stats.header_misses,
        stats.image_hits,
        stats.image_misses,
        stats.header_evictions + stats.image_evictions,
    );
    println!("\nmetrics registry snapshot:\n{}", reg.to_json());
}
