//! Prints FNV-1a hashes of the Table-1 workload codestream and decode —
//! the values `codec::tests::table1_workload_bytes_are_pinned` pins.
//! Re-run this after an *intentional* bitstream change to refresh them.
fn fnv(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn main() {
    use osss_jpeg2000::jpeg2000::codec::{decode, encode, EncodeParams, Mode};
    use osss_jpeg2000::jpeg2000::image::Image;
    for (name, mode) in [
        ("lossless", Mode::Lossless),
        ("lossy", Mode::lossy_default()),
    ] {
        let img = Image::synthetic_rgb(128, 128, 2008);
        let params = EncodeParams::new(mode).tile_size(32, 32);
        let bytes = encode(&img, &params).unwrap();
        let out = decode(&bytes).unwrap();
        let imghash = fnv(out
            .image
            .components
            .iter()
            .flat_map(|c| c.data.iter().flat_map(|v| v.to_le_bytes())));
        println!(
            "{name}: stream_len={} stream_fnv={:#018x} image_fnv={:#018x}",
            bytes.len(),
            fnv(bytes.iter().copied()),
            imghash
        );
    }
}
