//! The Figure 4 synthesis flow: generate every implementation-model
//! artefact for the case-study platform — FOSSY VHDL for the IDWT
//! hardware, C sources for the software tasks, and the EDK-style MHS/MSS
//! platform files — and write them to `target/generated/`.
//!
//! Run with: `cargo run --example synthesize_idwt`

use std::fs;
use std::path::Path;

use osss_jpeg2000::models::synth::{synthesis_flow, table2};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = Path::new("target/generated");
    fs::create_dir_all(out_dir)?;

    let artefacts = synthesis_flow();
    let mut written = Vec::new();
    for (name, code) in &artefacts.vhdl {
        let path = out_dir.join(format!("{name}.vhd"));
        fs::write(&path, code)?;
        written.push((path, code.lines().count()));
    }
    for (name, code) in &artefacts.c_sources {
        let path = out_dir.join(format!("{name}.c"));
        fs::write(&path, code)?;
        written.push((path, code.lines().count()));
    }
    let header = out_dir.join("osss_rt.h");
    fs::write(&header, &artefacts.runtime_header)?;
    written.push((header, artefacts.runtime_header.lines().count()));
    let mhs = out_dir.join("jpeg2000_ml401.mhs");
    fs::write(&mhs, &artefacts.mhs)?;
    written.push((mhs, artefacts.mhs.lines().count()));
    let mss = out_dir.join("jpeg2000_ml401.mss");
    fs::write(&mss, &artefacts.mss)?;
    written.push((mss, artefacts.mss.lines().count()));

    println!("FOSSY synthesis flow — generated implementation model:");
    for (path, lines) in &written {
        println!("  {:<44} {:>5} lines", path.display().to_string(), lines);
    }

    println!();
    println!("RTL synthesis estimates (Virtex-4 LX25):");
    for row in table2() {
        println!(
            "  {:<8} FOSSY: {:>4} slices @ {:>5.1} MHz   reference: {:>4} slices @ {:>5.1} MHz",
            row.design,
            row.fossy.slices,
            row.fossy.fmax_mhz,
            row.reference.slices,
            row.reference.fmax_mhz
        );
    }
    Ok(())
}
