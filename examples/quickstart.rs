//! Quickstart: the OSSS methodology in five minutes.
//!
//! Builds the same tiny producer/co-processor model twice — once on the
//! Application Layer (abstract communication) and once refined onto a
//! Virtual Target Architecture (shared bus + RMI) — and shows that the
//! behaviour is untouched while the timing becomes cycle-accurate.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use osss_jpeg2000::osss::{sched::Fcfs, SharedObject, TaskEnv};
use osss_jpeg2000::sim::{SimTime, Simulation};
use osss_jpeg2000::vta::{BusConfig, Channel, OpbBus, RmiService, SoftwareProcessor};

/// The behaviour: decode 4 blocks in software, filter each in the
/// hardware co-processor, annotated with estimated execution times.
fn workload_result() -> Vec<i64> {
    (0..4).map(|i| (i as i64 + 1) * 100).collect()
}

fn application_layer() -> Result<SimTime, osss_jpeg2000::sim::SimError> {
    let mut sim = Simulation::new();
    let so = SharedObject::new(&mut sim, "filter_so", Vec::<i64>::new(), Fcfs::new());
    let env = TaskEnv::application_layer("sw_task");
    let so2 = so.clone();
    sim.spawn_process("sw_task", move |ctx| {
        for i in 0..4i64 {
            // Software stage: 2 ms estimated execution time.
            let block = env.eet(ctx, SimTime::ms(2), || i + 1)?;
            // Blocking method call into the hardware shared object.
            so2.call(ctx, |acc, ctx| {
                ctx.wait(SimTime::us(50))?; // hardware compute
                acc.push(block * 100);
                Ok(())
            })?;
        }
        Ok(())
    });
    let report = sim.run()?;
    let result = so.inspect(|acc| acc.clone());
    assert_eq!(result, workload_result());
    Ok(report.end_time)
}

fn vta_layer() -> Result<SimTime, osss_jpeg2000::sim::SimError> {
    let mut sim = Simulation::new();
    let so = SharedObject::new(&mut sim, "filter_so", Vec::<i64>::new(), Fcfs::new());
    // Refinement: the task maps onto a processor, the call onto a bus.
    let cpu = SoftwareProcessor::new(&mut sim, "ppc405", osss_jpeg2000::sim::Frequency::mhz(100));
    let bus = Arc::new(OpbBus::new(&mut sim, "opb", BusConfig::opb_100mhz()));
    let rmi = RmiService::new(so.clone(), bus as Arc<dyn Channel>);
    let env = cpu.env("sw_task");
    sim.spawn_process("sw_task", move |ctx| {
        for i in 0..4i64 {
            let block = env.eet(ctx, SimTime::ms(2), || i + 1)?;
            // Identical behaviour, now carried by RMI over the bus: the
            // 256-word argument transfer is costed cycle-accurately.
            rmi.invoke(ctx, &vec![0u32; 256], &(), |acc, ctx| {
                ctx.wait(SimTime::us(50))?;
                acc.push(block * 100);
                Ok(())
            })?;
        }
        Ok(())
    });
    let report = sim.run()?;
    let result = so.inspect(|acc| acc.clone());
    assert_eq!(result, workload_result());
    Ok(report.end_time)
}

fn main() -> Result<(), osss_jpeg2000::sim::SimError> {
    let t_app = application_layer()?;
    let t_vta = vta_layer()?;
    println!("OSSS quickstart — one behaviour, two abstraction levels");
    println!("  Application Layer : {t_app}");
    println!("  VTA Layer         : {t_vta}");
    println!(
        "  Communication cost made explicit by refinement: {}",
        t_vta - t_app
    );
    println!();
    println!("Next steps:");
    println!("  cargo run --release --bin table1_simulation -p jpeg2000-models");
    println!("  cargo run --release --bin table2_synthesis  -p jpeg2000-models");
    println!("  cargo run --release --bin figure1_profile   -p jpeg2000-models");
    Ok(())
}
