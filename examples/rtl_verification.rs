//! RTL verification flow: the part of the FOSSY story a hardware team
//! lives in day to day.
//!
//! 1. Take the bit-true IDWT53 1-D lifting core (synthesisable IR).
//! 2. Verify it sample-for-sample against the `jpeg2000` software codec
//!    using the IR interpreter (an RTL simulation).
//! 3. Run the synthesis passes (inline → fold → dead-signal elimination)
//!    and re-verify — the transformation is behaviour-preserving.
//! 4. Emit the FOSSY-style VHDL plus a self-checking testbench whose
//!    expected values come from the verified model.
//!
//! Run with: `cargo run --release --example rtl_verification`

use osss_jpeg2000::fossy::emit::{loc, testbench, vhdl};
use osss_jpeg2000::fossy::idwt::idwt53_1d_core;
use osss_jpeg2000::fossy::interp::Interp;
use osss_jpeg2000::fossy::passes::{eliminate_dead_signals, fold_entity, inline_entity};
use osss_jpeg2000::jpeg2000::dwt::fdwt53_1d;

fn reconstruct_with_core(ent: &osss_jpeg2000::fossy::ir::Entity, coeffs: &[i32]) -> Vec<i32> {
    let n = coeffs.len();
    let ns = n.div_ceil(2);
    let mut it = Interp::new(ent);
    {
        let mem = it.mem_mut("linebuf");
        for (k, i) in (0..n).step_by(2).enumerate() {
            mem[k] = coeffs[i] as i64;
        }
        for (k, i) in (1..n).step_by(2).enumerate() {
            mem[ns + k] = coeffs[i] as i64;
        }
    }
    it.set_input("n_low", ns as i64);
    it.set_input("n_high", (n / 2) as i64);
    it.set_input("start", 1);
    assert!(
        it.run_until(60 * n as u64 + 100, |s| s.get("done") == 1),
        "core did not finish"
    );
    (0..n).map(|i| it.mem_mut("colbuf")[i] as i32).collect()
}

fn main() {
    // A synthetic scan line, forward-transformed by the *software* codec.
    let original: Vec<i32> = (0..24)
        .map(|i| ((i * 37) % 256) - 128 + if i % 7 == 0 { 40 } else { 0 })
        .collect();
    let mut coeffs = original.clone();
    fdwt53_1d(&mut coeffs);

    println!("RTL verification of the IDWT53 1-D lifting core");
    println!("  line length  : {}", original.len());

    // 1+2: the design-entry model reconstructs the exact input.
    let core = idwt53_1d_core();
    let out = reconstruct_with_core(&core, &coeffs);
    assert_eq!(out, original);
    println!("  design entry : reconstruction bit-true vs software lifting");

    // 3: synthesis passes preserve behaviour.
    let synthesised = eliminate_dead_signals(&fold_entity(&inline_entity(&core)));
    let out2 = reconstruct_with_core(&synthesised, &coeffs);
    assert_eq!(out2, original);
    println!("  synthesised  : reconstruction bit-true after inline+fold+DSE");

    // 4: artefacts.
    let code = vhdl::emit_entity_styled(&synthesised, vhdl::Style::ThreeAddress);
    vhdl::structural_check(&code).expect("sound VHDL");
    let steps: Vec<testbench::Step> = std::iter::once(testbench::Step {
        inputs: vec![
            ("n_low".to_string(), 12),
            ("n_high".to_string(), 12),
            ("start".to_string(), 1),
        ],
    })
    .chain((0..40).map(|_| testbench::Step::default()))
    .collect();
    let bench = testbench::emit_testbench(&synthesised, &steps);
    println!(
        "  artefacts    : {} lines of VHDL, {} lines of self-checking bench",
        loc(&code),
        loc(&bench)
    );
    std::fs::create_dir_all("target/generated").ok();
    std::fs::write("target/generated/idwt53_1d_core.vhd", &code).expect("write vhdl");
    std::fs::write("target/generated/idwt53_1d_core_tb.vhd", &bench).expect("write bench");
    println!("  written to   : target/generated/idwt53_1d_core{{,_tb}}.vhd");
}
