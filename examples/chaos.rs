//! Chaos-testing the network decode stack: a deterministic fault
//! proxy sits between `Client` and `DecodeServer` on loopback and
//! replays a seeded schedule of partial writes, stalls, corruption,
//! drops and blackholes, while the hardened endpoints answer every
//! disturbance with a structured outcome —
//!
//! * a **clean** schedule is transparent: bit-exact decodes, zero
//!   injected faults;
//! * an **adversarial** schedule is survived: CRC catches corruption,
//!   deadlines catch stalls, the client's circuit breaker fails fast
//!   on a blackholed path, and the server accounting still reconciles;
//! * a **slow-loris** peer trickling bytes is evicted by the
//!   whole-frame read deadline instead of pinning a handler.
//!
//! Run with: `cargo run --release --example chaos`

use osss_jpeg2000::models::workload::workload;
use osss_jpeg2000::models::ModeSel;
use osss_jpeg2000::{
    ChaosConfig, ChaosProxy, CircuitBreaker, Client, DecodeServer, DecodeService, NetError,
    NetRetryPolicy, Request, ServerConfig, ServiceConfig,
};
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

const SEED: u64 = 0x00DD_5EED;

fn main() {
    let wl = workload(ModeSel::Lossless);
    let service = Arc::new(DecodeService::new(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    }));
    let server = DecodeServer::start(
        Arc::clone(&service),
        "127.0.0.1:0",
        ServerConfig {
            handler_threads: 4,
            poll_interval: Duration::from_millis(10),
            frame_deadline: Some(Duration::from_millis(250)),
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    println!("decode server on {}", server.local_addr());

    // --- A clean schedule is invisible ------------------------------
    let proxy = ChaosProxy::start(server.local_addr(), ChaosConfig::clean(SEED)).expect("proxy");
    let mut client = Client::connect(proxy.local_addr()).expect("connect via proxy");
    let resp = client
        .request(&Request::strict(), &wl.codestream)
        .expect("clean proxied decode");
    assert_eq!(resp.image, *wl.reference, "clean proxy must be transparent");
    drop(client);
    let stats = proxy.shutdown();
    println!(
        "clean:       bit-exact through the proxy ({} B up, {} B down, 0 faults)",
        stats.upstream.bytes_out, stats.downstream.bytes_out
    );

    // --- An adversarial schedule is survived ------------------------
    let proxy =
        ChaosProxy::start(server.local_addr(), ChaosConfig::adversarial(SEED)).expect("proxy");
    let policy = NetRetryPolicy {
        max_retries: 3,
        backoff_base: Duration::from_millis(1),
        jitter_seed: SEED,
        ..NetRetryPolicy::default()
    };
    let mut breaker = CircuitBreaker::new(3, Duration::from_millis(100));
    let mut tally = [0u32; 3]; // ok / structured error / fail-fast
    for i in 0..12 {
        let mut c = Client::connect(proxy.local_addr())
            .expect("connect via proxy")
            .op_deadline(Duration::from_millis(750));
        match c.decode_retry_guarded(&Request::strict(), &wl.codestream, &policy, &mut breaker) {
            Ok(resp) => {
                assert_eq!(resp.image, *wl.reference, "chaos must never warp an image");
                tally[0] += 1;
            }
            Err(NetError::CircuitOpen) => {
                tally[2] += 1;
                std::thread::sleep(Duration::from_millis(110));
            }
            Err(e) => {
                println!("  request {i:2}: structured failure: {e}");
                tally[1] += 1;
            }
        }
    }
    let stats = proxy.shutdown();
    println!(
        "adversarial: {} ok, {} structured errors, {} failed fast (breaker) — \
         injected: {} corrupt B, {} drops, {} blackholes",
        tally[0],
        tally[1],
        tally[2],
        stats.upstream.corrupted_bytes + stats.downstream.corrupted_bytes,
        stats.upstream.drops + stats.downstream.drops,
        stats.blackholed,
    );

    // --- Slow-loris is evicted, not served forever ------------------
    let mut loris = TcpStream::connect(server.local_addr()).expect("connect");
    let header: [u8; 8] = {
        let mut h = [0u8; 8];
        h[..4].copy_from_slice(&0x4A32_4B44u32.to_le_bytes());
        h[4..].copy_from_slice(&1_000_000u32.to_le_bytes());
        h
    };
    loris.write_all(&header).expect("loris header");
    for _ in 0..20 {
        if loris.write_all(&[0]).is_err() {
            break; // evicted mid-trickle
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    drop(loris);

    // --- Accounting survives all of it ------------------------------
    let server_stats = server.shutdown();
    assert!(server_stats.reconciles(), "{server_stats:?}");
    assert!(
        server_stats.frame_timeouts >= 1,
        "the loris must hit the frame deadline: {server_stats:?}"
    );
    let service_stats = Arc::try_unwrap(service)
        .ok()
        .expect("server released its handle")
        .shutdown();
    assert!(service_stats.reconciles(), "{service_stats:?}");
    println!(
        "server:      frames {}/{}, ok={} frame_timeouts={} (loris evicted) — accounting reconciles",
        server_stats.frames_in, server_stats.frames_out, server_stats.ok,
        server_stats.frame_timeouts,
    );
}
