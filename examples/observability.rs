//! The observability layer end to end: every Table-1 model version is
//! re-run with the tracer, scheduler probe and metrics registry
//! attached, the per-version decoding/IDWT latencies are *re-derived
//! from the signal traces alone* and checked against the values the
//! simulations reported, and the artefacts are written out:
//!
//! * `BENCH_observability.json` — per-version latencies (trace-derived),
//!   native-decoder work counters and the full v7b metrics snapshot, in
//!   the repository's `BENCH_*.json` style;
//! * `trace_v7b_lossless.vcd` — the hierarchical waveform dump of the
//!   most refined model, validated with the in-repo VCD parser (load it
//!   in gtkwave to watch `idwt.busy`, `sw.tiles_done` and the signed
//!   `hwsw.credit`).
//!
//! Run with: `cargo run --release --example observability`

use osss_jpeg2000::models::observe::{derive_from_trace, run_version_observed};
use osss_jpeg2000::models::workload::workload;
use osss_jpeg2000::models::{ModeSel, VersionId};
use osss_jpeg2000::sim::vcd;

fn main() {
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"observability\",\n");
    json.push_str("  \"workload\": \"table1_128x128_rgb_16_tiles\",\n");

    // Native tile-parallel decoder: real work counters, 4 workers.
    let wl = workload(ModeSel::Lossless);
    let (out, stats) = osss_jpeg2000::decode_parallel_observed(&wl.codestream, 4, None)
        .expect("parallel decode of the Table-1 workload");
    assert_eq!(
        out.image, *wl.reference,
        "parallel decode must stay bit-exact"
    );
    let c = &stats.counters;
    json.push_str(&format!(
        "  \"native_decode\": {{ \"workers\": {}, \"tiles\": {}, \"code_blocks\": {}, \
         \"coding_passes\": {}, \"mq_renorms\": {}, \"bytes_in\": {}, \"samples_out\": {}, \
         \"arena_reuses\": {} }},\n",
        stats.workers,
        c.tiles,
        c.code_blocks,
        c.coding_passes,
        c.mq_renorms,
        c.bytes_in,
        c.samples_out,
        c.arena_reuses,
    ));
    println!(
        "native decode: {} tiles over {} workers, {} code-blocks, {} coding passes, {} MQ renorms",
        c.tiles, stats.workers, c.code_blocks, c.coding_passes, c.mq_renorms
    );

    // Every model version, both modes: run observed, re-derive Table 1
    // from the traces, check the derivation against the report.
    json.push_str("  \"versions\": {\n");
    println!();
    println!(
        "{:<5} {:<9} {:>12} {:>12} {:>10}  (all trace-derived, checked vs report)",
        "ver", "mode", "decode[ms]", "idwt[ms]", "occupancy"
    );
    let mut v7b_metrics = None;
    for (vi, version) in VersionId::ALL.iter().enumerate() {
        json.push_str(&format!("    \"{version}\": {{ "));
        for (mi, mode) in ModeSel::ALL.iter().enumerate() {
            let run = run_version_observed(*version, *mode).expect("observed run");
            assert!(
                run.result.functional_ok,
                "{version} {mode}: output mismatch"
            );
            let derived = derive_from_trace(&run.tracer.records());
            assert_eq!(
                derived.decode_time, run.result.decode_time,
                "{version} {mode}: trace-derived decode time must equal the report"
            );
            assert_eq!(
                derived.idwt_time, run.result.idwt_time,
                "{version} {mode}: trace-derived IDWT time must equal the report"
            );
            println!(
                "{:<5} {:<9} {:>12.1} {:>12.2} {:>9.1}%",
                version.to_string(),
                mode.to_string(),
                derived.decode_time.as_ms_f64(),
                derived.idwt_time.as_ms_f64(),
                derived.idwt_occupancy * 100.0
            );
            json.push_str(&format!(
                "\"{mode}\": {{ \"decode_ms\": {:.3}, \"idwt_ms\": {:.3}, \
                 \"idwt_occupancy\": {:.4} }}{}",
                derived.decode_time.as_ms_f64(),
                derived.idwt_time.as_ms_f64(),
                derived.idwt_occupancy,
                if mi + 1 < ModeSel::ALL.len() {
                    ", "
                } else {
                    ""
                }
            ));
            if *version == VersionId::V7b && *mode == ModeSel::Lossless {
                v7b_metrics = Some((run.tracer.clone(), run.registry.clone()));
            }
        }
        json.push_str(&format!(
            " }}{}\n",
            if vi + 1 < VersionId::ALL.len() {
                ","
            } else {
                ""
            }
        ));
    }
    json.push_str("  },\n");

    // The most refined model's full metrics snapshot, nested verbatim
    // (the registry renders deterministic, sorted JSON).
    let (tracer, registry) = v7b_metrics.expect("v7b ran");
    let metrics_json = registry.to_json();
    json.push_str("  \"v7b_lossless_metrics\": ");
    json.push_str(&indent_nested(&metrics_json, 2));
    json.push_str("\n}\n");

    // The waveform artefact: hierarchical scopes, a signed signal, and
    // it must pass the in-repo validating parser.
    let vcd_text = tracer.to_vcd();
    let doc = vcd::parse(&vcd_text).expect("emitted VCD must validate");
    let credit = doc
        .var_named("credit")
        .expect("hwsw.credit must be declared");
    assert_eq!(credit.scope, vec!["hwsw".to_string()]);
    let negative = doc.changes_of("credit").iter().any(|ch| match &ch.value {
        vcd::VcdValue::Vector(bits) => bits.len() == 64 && bits.starts_with('1'),
        _ => false,
    });
    assert!(
        negative,
        "the credit signal must dip negative (64-bit two's complement)"
    );
    assert!(
        doc.var_named("busy").is_some(),
        "idwt.busy must be declared"
    );

    let root = concat!(env!("CARGO_MANIFEST_DIR"));
    let json_path = format!("{root}/BENCH_observability.json");
    let vcd_path = format!("{root}/trace_v7b_lossless.vcd");
    std::fs::write(&json_path, &json).expect("write BENCH_observability.json");
    std::fs::write(&vcd_path, &vcd_text).expect("write trace_v7b_lossless.vcd");
    println!();
    println!("wrote {json_path}");
    println!(
        "wrote {vcd_path} ({} signals, {} changes, negative-capable credit verified)",
        doc.vars.len(),
        doc.changes.len()
    );
}

/// Re-indents a pretty-printed JSON object so it nests cleanly at
/// `depth` levels inside the surrounding document.
fn indent_nested(json: &str, depth: usize) -> String {
    let pad = "  ".repeat(depth);
    let mut out = String::new();
    for (i, line) in json.trim_end().lines().enumerate() {
        if i > 0 {
            out.push('\n');
            out.push_str(&pad);
        }
        out.push_str(line);
    }
    out
}
