//! Design-space exploration: the paper's core workflow.
//!
//! Runs the Application-Layer model versions (1–5), shows how each
//! restructuring step changes the decode time, then refines the chosen
//! structure to the VTA layer (6b) and shows what the cycle-accurate
//! communication/memory model adds.
//!
//! Run with: `cargo run --release --example design_space_exploration`

use osss_jpeg2000::models::{fault_axis, fault_sweep, run_version, ModeSel, VersionId};

fn main() {
    let mode = ModeSel::Lossless;
    println!("Design-space exploration, {mode} mode (16 tiles, 3 components)");
    println!();
    let mut baseline = None;
    for v in [
        VersionId::V1,
        VersionId::V2,
        VersionId::V3,
        VersionId::V4,
        VersionId::V5,
    ] {
        let r = run_version(v, mode).expect("simulation");
        let dec = r.decode_time.as_ms_f64();
        let speedup = baseline.map(|b: f64| b / dec).unwrap_or(1.0);
        if baseline.is_none() {
            baseline = Some(dec);
        }
        println!(
            "  {:<3} {:<36} {:>9.1} ms  ×{:.2}  idwt {:>7.2} ms  [{}]",
            v.to_string(),
            v.description(),
            dec,
            speedup,
            r.idwt_time.as_ms_f64(),
            if r.functional_ok {
                "output ok"
            } else {
                "MISMATCH"
            }
        );
    }
    println!();
    println!("Refinement to the Virtual Target Architecture:");
    for v in [VersionId::V6b, VersionId::V7b] {
        let r = run_version(v, mode).expect("simulation");
        println!(
            "  {:<3} {:<36} {:>9.1} ms        idwt {:>7.2} ms  [{}]",
            v.to_string(),
            v.description(),
            r.decode_time.as_ms_f64(),
            r.idwt_time.as_ms_f64(),
            if r.functional_ok {
                "output ok"
            } else {
                "MISMATCH"
            }
        );
    }
    println!();
    println!("Robustness cost (6b structure, faulty OPB + reliable RMI):");
    let results = fault_sweep(mode, &fault_axis(42)).expect("simulation");
    for r in &results {
        println!(
            "  drop {:>5.0e} flip {:>5.0e}  {:>9.1} ms  goodput {:>6.2}%  \
             {:>2} recovered  {:>2} degraded  [{}]",
            r.fault.drop_rate,
            r.fault.bit_flip_per_word,
            r.decode_time.as_ms_f64(),
            r.goodput() * 100.0,
            r.tiles_recovered,
            r.tiles_degraded,
            if r.bit_exact {
                "bit-exact"
            } else if r.image_ok {
                "mid-gray tiles"
            } else {
                "MISMATCH"
            }
        );
    }
    println!();
    println!("Reading the table the way the paper does:");
    println!("  1→2: offloading IQ+IDWT helps ~10% — the arithmetic decoder dominates.");
    println!("  2→3: pipelining helps only marginally, for the same reason.");
    println!("  3→4/5: parallelising the arithmetic decoder 4× is what pays off.");
    println!("  →VTA: channel + memory refinement inflates the IDWT time ~8×,");
    println!("        but the decode time barely moves: still software-dominated.");
}
